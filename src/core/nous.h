#ifndef NOUS_CORE_NOUS_H_
#define NOUS_CORE_NOUS_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/shard_set.h"
#include "core/snapshot.h"
#include "corpus/document_stream.h"
#include "durability/manager.h"
#include "graph/graph_stats.h"
#include "obs/resource_sampler.h"
#include "qa/query_cache.h"
#include "qa/query_engine.h"

namespace nous {

/// Observer of durable commits, the WAL-shipping hook (DESIGN.md
/// §5.15). Both callbacks run on the committing thread while it holds
/// the ingest mutex: implementations must only enqueue (never block on
/// network or disk) and must not call back into Nous.
class CommitListener {
 public:
  virtual ~CommitListener() = default;
  /// One batch was WAL-logged and applied. `payload` is the exact WAL
  /// payload (EncodeArticleBatch bytes); `kg_version` the live KG
  /// version after the apply.
  virtual void OnCommit(uint64_t seq, const std::string& payload,
                        uint64_t kg_version) = 0;
  /// A checkpoint covering everything up to `seq` was persisted.
  /// `state` is the full KgPipeline::SaveState image.
  virtual void OnCheckpoint(uint64_t seq, const std::string& state,
                            uint64_t kg_version) = 0;
};

/// Top-level facade: the public API a downstream user programs against.
///
///   CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), {});
///   Nous nous(&kb);
///   nous.IngestStream(&stream);
///   nous.Finalize();
///   auto answer = nous.Ask("tell me about DJI");
///
/// Wraps the construction pipeline (§3), the streaming miner (§3.5),
/// and the question-answering engine (§3.6, Figure 5's query classes).
///
/// Durability (DESIGN.md §5.10): with Options::durability.dir set,
/// Recover() restores the last checkpoint, replays the WAL, and opens
/// the log; every subsequent ingest is logged before it is applied and
/// only acknowledged (Status OK) once both succeeded. kill -9 at any
/// byte offset recovers a KG bit-identical to the last durable batch.
/// Nous construction options. Lives at namespace scope (with a nested
/// alias below) because GCC 12 miscompiles `Options options = {}`
/// default arguments when a nested class carries its own default
/// member initializers.
struct NousOptions {
  PipelineConfig pipeline;
  QueryEngineConfig query;
  /// Crash safety; disabled while `durability.dir` is empty.
  DurabilityOptions durability;
  /// Versioned LRU cache over executed answers (DESIGN.md §5.11).
  /// Only effective in snapshot-serving mode
  /// (pipeline.publish_snapshots): a cached answer is keyed by the
  /// KG version it was computed at, so every ingest commit
  /// implicitly invalidates the whole cache.
  QueryCacheOptions query_cache;
  /// Hash-shards the KG commit tier into N shards (DESIGN.md
  /// §5.16): each shard owns its own commit lane, mutex, WAL
  /// segment, checkpoint, and snapshot store, so parallel durable
  /// ingest overlaps the per-batch fsyncs. 1 (the default) keeps
  /// the classic single-graph layout byte-for-byte. Values > 1
  /// force pipeline.publish_snapshots (sharded queries serve from
  /// the planner snapshot plus the shard views) and are clamped to
  /// kMaxShards. The fused KG is bit-identical for every value.
  size_t shards = 1;
};

class Nous {
 public:
  using Options = NousOptions;

  /// `kb` must outlive the instance.
  explicit Nous(const CuratedKb* kb, Options options = {});

  /// What Recover() found on disk.
  struct RecoveryStats {
    bool restored_checkpoint = false;
    uint64_t replayed_batches = 0;
    uint64_t replayed_articles = 0;
    /// Torn/corrupt WAL tail records dropped (never-acknowledged data).
    uint64_t dropped_wal_records = 0;
    uint64_t dropped_wal_bytes = 0;
    uint64_t last_seq = 0;
  };

  /// Restores durable state and arms the WAL. Must be called before
  /// any ingest, on a Nous built with the same CuratedKb and
  /// PipelineConfig that produced the on-disk state. On a fresh
  /// directory this simply enables durable ingest. Fails if durability
  /// is unconfigured, already enabled, or ingest already happened.
  Result<RecoveryStats> Recover() EXCLUDES(kg_mutex());

  /// Recover(), discarding the stats — reads better at call sites
  /// that know the directory is fresh.
  Status EnableDurability();

  /// Forces a checkpoint now: atomically persists the full pipeline
  /// state and resets the WAL. Also triggered automatically every
  /// `durability.checkpoint_interval_batches` ingested batches.
  Status Checkpoint() EXCLUDES(kg_mutex());

  /// Whether durable ingest is armed (Recover succeeded).
  bool durable() const {
    return durability_enabled_.load(std::memory_order_acquire);
  }

  /// Feeds one article through the construction pipeline. With
  /// durability armed, the article is WAL-logged first and the call
  /// fails — with no state change — if logging fails ("never
  /// acknowledge what is not logged").
  Status Ingest(const Article& article) EXCLUDES(kg_mutex());

  /// Batch ingest: extraction fans out across the pipeline's worker
  /// pool; the fused KG is identical to one-at-a-time ingestion.
  Status IngestBatch(const std::vector<Article>& articles)
      EXCLUDES(kg_mutex());

  /// Drains a document stream, optionally finalizing afterwards.
  /// Stops at the first durability failure.
  Status IngestStream(DocumentStream* stream, bool finalize = true)
      EXCLUDES(kg_mutex());

  /// Ad-hoc text ingestion.
  Status IngestText(const std::string& text, const Date& date,
                    const std::string& source) EXCLUDES(kg_mutex());

  /// Fits topics + final confidence refresh. Idempotent-ish: may be
  /// called again after more ingestion. In durable mode this also
  /// writes a checkpoint: Finalize mutates the KG outside the WAL
  /// (topic fit, confidence refresh), so the only way a restart or a
  /// follower can reproduce it is from a full image.
  void Finalize() EXCLUDES(kg_mutex());

  /// Registers the replication hook (nullptr to clear). The listener
  /// is invoked under the ingest mutex for every durable commit and
  /// checkpoint from the moment this returns; it must outlive its
  /// registration. Setting it blocks until in-flight commits drain,
  /// so after SetCommitListener(nullptr) returns no further callbacks
  /// run.
  void SetCommitListener(CommitListener* listener) EXCLUDES(kg_mutex());

  /// A consistent (seq, kg_version, full state image) triple captured
  /// under the ingest mutex — what the leader ships to a follower that
  /// needs a full resync.
  struct ReplicationImage {
    uint64_t seq = 0;
    uint64_t kg_version = 0;
    std::string state;
  };
  Result<ReplicationImage> CaptureReplicationImage() EXCLUDES(kg_mutex());

  /// Follower-side apply of one shipped WAL batch: logs it to the
  /// local WAL (log-before-apply, same as the leader) and applies it.
  /// `seq` must be exactly last_durable_seq() + 1 — a gap means frames
  /// were lost and the caller must resync (FailedPrecondition). When
  /// `expected_kg_version` is nonzero and the local KG version after
  /// the apply differs, returns DataLoss: the replica diverged and
  /// must resync from a full image.
  Status ApplyReplicatedBatch(uint64_t seq, const std::string& payload,
                              uint64_t expected_kg_version)
      EXCLUDES(kg_mutex());

  /// Follower-side apply of a full checkpoint image covering `seq`:
  /// replaces the in-memory pipeline state and persists the image as
  /// the local checkpoint (resetting the local WAL).
  Status ApplyReplicatedCheckpoint(uint64_t seq, const std::string& state)
      EXCLUDES(kg_mutex());

  /// Highest WAL seq this instance has logged + applied (0 before any
  /// durable commit). Lock-free; readable from any thread.
  uint64_t last_durable_seq() const {
    return durable_seq_.load(std::memory_order_acquire);
  }
  /// KG version matching last_durable_seq().
  uint64_t durable_kg_version() const {
    return durable_kg_version_.load(std::memory_order_acquire);
  }

  /// Parses and executes a natural-language-like query (Figure 5).
  /// In snapshot-serving mode (the default) this runs entirely
  /// against the latest published KgSnapshot — no lock is taken, so
  /// a slow query can never stall ingest — consulting the versioned
  /// query cache first. With publishing disabled it falls back to
  /// reader-locked execution against the live graph.
  ///
  /// `snapshot_out`, when non-null, receives the snapshot the answer
  /// was computed against (null in the locked fallback) so callers
  /// can serialize the answer against the exact same view.
  Result<Answer> Ask(const std::string& question,
                     std::shared_ptr<const KgSnapshot>* snapshot_out =
                         nullptr) EXCLUDES(kg_mutex());

  /// Executes a pre-built structured query. Serves like Ask().
  Result<Answer> Execute(const Query& query,
                         std::shared_ptr<const KgSnapshot>* snapshot_out =
                             nullptr) EXCLUDES(kg_mutex());

  /// True when the commit tier is hash-sharded (Options::shards > 1).
  bool sharded() const { return shards_ != nullptr; }

  /// Blocks until every shard lane has applied its queue, so the next
  /// query sees a composite view at the latest committed version.
  /// No-op when unsharded.
  void DrainShards();

  /// One published version per shard, in shard order (empty when
  /// unsharded). After DrainShards() every entry equals the planner's
  /// kg_version() — the coherence criterion composite reads check.
  std::vector<uint64_t> CompositeVersion() const;

  /// The shard commit tier, for tests and benches; null unsharded.
  ShardSet* shard_set() { return shards_.get(); }
  const ShardSet* shard_set() const { return shards_.get(); }

  /// Variants for callers that already hold a ReaderMutexLock on
  /// kg_mutex() — e.g. the HTTP API, which serializes the answer under
  /// the same lock. Calling Ask()/Execute() while holding the lock
  /// would self-deadlock against a queued writer; the REQUIRES_SHARED
  /// annotations make either mistake (no lock, or double lock) a
  /// compile error under Clang.
  Result<Answer> AskUnlocked(const std::string& question) const
      REQUIRES_SHARED(kg_mutex());
  Result<Answer> ExecuteUnlocked(const Query& query) const
      REQUIRES_SHARED(kg_mutex());

  /// The pipeline's reader/writer lock, re-exported so lock-aware
  /// callers (HTTP API) can name one capability for both objects:
  /// RETURN_CAPABILITY aliases `nous.kg_mutex()` to the pipeline's
  /// underlying mutex member.
  AnnotatedSharedMutex& kg_mutex() const
      RETURN_CAPABILITY(pipeline_.kg_mutex()) {
    return pipeline_.kg_mutex();
  }

  const PropertyGraph& graph() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.graph();
  }
  /// Monotonic KG version of the live graph (see KgPipeline).
  uint64_t kg_version() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.kg_version();
  }
  const PipelineStats& stats() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.stats();
  }
  /// Walks the latest snapshot when one is published; otherwise
  /// read-locks the pipeline and walks the live graph.
  GraphStats ComputeStats() const EXCLUDES(kg_mutex());
  KgPipeline& pipeline() { return pipeline_; }
  const StreamingMiner* miner() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.miner();
  }

  /// Latest published KG snapshot; null when snapshot serving is off
  /// (Options::pipeline.publish_snapshots = false).
  std::shared_ptr<const KgSnapshot> snapshot() const {
    return pipeline_.snapshot();
  }

  /// The query cache, for stats inspection; null when disabled.
  const QueryCache* query_cache() const { return cache_.get(); }

  /// The options this instance was built with (immutable). The
  /// replication leader reads durability.dir to tail the WAL.
  const Options& options() const { return options_; }

  /// Registers a telemetry probe on `sampler` that exports the
  /// serving-tier gauges on every sampling tick: snapshot version and
  /// clone bytes, publish count, query-cache hit ratio, thread-pool
  /// queue depth, and p99 gauges derived from the publish / WAL
  /// latency histograms. The sampler must not outlive this Nous.
  void RegisterResourceProbes(ResourceSampler* sampler);

 private:
  /// Clamps Options::shards and forces the settings sharding relies
  /// on. Runs before pipeline_ is constructed.
  static Options NormalizeOptions(Options options);
  /// Cache-checked execution against one immutable snapshot.
  Result<Answer> ExecuteOnSnapshot(
      const Query& query,
      const std::shared_ptr<const KgSnapshot>& snap) const;
  /// Cache-checked scatter-gather execution over the shard views
  /// published at `snap`'s version. When a lane has not yet published
  /// that version, serves from the (bit-identical) planner snapshot
  /// instead of blocking.
  Result<Answer> ExecuteOnShards(
      const Query& query,
      const std::shared_ptr<const KgSnapshot>& snap) const;
  /// Durable log-then-apply for one batch; caller holds ingest_mutex_
  /// so WAL order always matches apply order.
  Status IngestBatchDurable(const Article* articles, size_t count)
      REQUIRES(ingest_mutex_) EXCLUDES(kg_mutex());
  /// Sharded log-then-apply for one batch. `*seq_out` receives the
  /// WAL seq the caller must WaitDurable() on *after* releasing
  /// ingest_mutex_ (0 in non-durable mode), so concurrent writers
  /// overlap their fsync waits.
  Status IngestBatchSharded(const Article* articles, size_t count,
                            uint64_t* seq_out) REQUIRES(ingest_mutex_)
      EXCLUDES(kg_mutex());
  /// Drains the pipeline's captured op batches to the shard lanes at
  /// the current KG version (seq == 0 when there is nothing to fsync).
  void CommitToShardsLocked(uint64_t seq) REQUIRES(ingest_mutex_)
      EXCLUDES(kg_mutex());
  /// Persists the planner + per-shard checkpoints and resets the
  /// shard WALs (ShardSet::WriteCheckpoint commit protocol).
  Status ShardedCheckpointLocked() REQUIRES(ingest_mutex_)
      EXCLUDES(kg_mutex());
  /// Sharded Recover() body: per-shard checkpoints + merged WAL
  /// replay through the planner, re-captured onto the shards.
  Result<RecoveryStats> RecoverShardedLocked() REQUIRES(ingest_mutex_)
      EXCLUDES(kg_mutex());
  /// Reads the live KG version (brief reader lock) and publishes the
  /// (seq, version) pair to the lock-free accessors + the listener.
  uint64_t PublishCommitLocked(uint64_t seq) REQUIRES(ingest_mutex_)
      EXCLUDES(kg_mutex());

  Options options_;
  KgPipeline pipeline_;
  /// Versioned answer cache; internally synchronized, null when
  /// disabled. The pointer is immutable after construction.
  std::unique_ptr<QueryCache> cache_;  // lint: unguarded(see above)

  /// Serializes durable ingest so the WAL append order equals the
  /// pipeline apply order (lock order: ingest_mutex_ before the
  /// pipeline's kg_mutex, which IngestBatch acquires internally).
  /// Non-durable ingest never touches this mutex.
  AnnotatedMutex ingest_mutex_;
  std::unique_ptr<DurabilityManager> durability_ GUARDED_BY(ingest_mutex_);
  /// Fast-path flag mirroring `durability_ != nullptr`; flipped once
  /// by Recover() before any concurrent ingest exists.
  std::atomic<bool> durability_enabled_{false};
  /// Replication hook; null when nothing is subscribed.
  CommitListener* listener_ GUARDED_BY(ingest_mutex_) = nullptr;
  /// (seq, kg_version) of the last durable commit, published for
  /// lock-free lag/staleness reads by the serving tier.
  std::atomic<uint64_t> durable_seq_{0};
  std::atomic<uint64_t> durable_kg_version_{0};
  /// Sharded commit tier (Options::shards > 1); null otherwise. The
  /// pointer is immutable after construction and the ShardSet is
  /// internally synchronized. Declared last so the lane threads stop
  /// before anything they publish into goes away.
  std::unique_ptr<ShardSet> shards_;  // lint: unguarded(see above)
};

}  // namespace nous

#endif  // NOUS_CORE_NOUS_H_
