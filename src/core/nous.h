#ifndef NOUS_CORE_NOUS_H_
#define NOUS_CORE_NOUS_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/snapshot.h"
#include "corpus/document_stream.h"
#include "durability/manager.h"
#include "graph/graph_stats.h"
#include "obs/resource_sampler.h"
#include "qa/query_cache.h"
#include "qa/query_engine.h"

namespace nous {

/// Top-level facade: the public API a downstream user programs against.
///
///   CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), {});
///   Nous nous(&kb);
///   nous.IngestStream(&stream);
///   nous.Finalize();
///   auto answer = nous.Ask("tell me about DJI");
///
/// Wraps the construction pipeline (§3), the streaming miner (§3.5),
/// and the question-answering engine (§3.6, Figure 5's query classes).
///
/// Durability (DESIGN.md §5.10): with Options::durability.dir set,
/// Recover() restores the last checkpoint, replays the WAL, and opens
/// the log; every subsequent ingest is logged before it is applied and
/// only acknowledged (Status OK) once both succeeded. kill -9 at any
/// byte offset recovers a KG bit-identical to the last durable batch.
class Nous {
 public:
  struct Options {
    PipelineConfig pipeline;
    QueryEngineConfig query;
    /// Crash safety; disabled while `durability.dir` is empty.
    DurabilityOptions durability;
    /// Versioned LRU cache over executed answers (DESIGN.md §5.11).
    /// Only effective in snapshot-serving mode
    /// (pipeline.publish_snapshots): a cached answer is keyed by the
    /// KG version it was computed at, so every ingest commit
    /// implicitly invalidates the whole cache.
    QueryCacheOptions query_cache;
  };

  /// `kb` must outlive the instance.
  explicit Nous(const CuratedKb* kb, Options options = {});

  /// What Recover() found on disk.
  struct RecoveryStats {
    bool restored_checkpoint = false;
    uint64_t replayed_batches = 0;
    uint64_t replayed_articles = 0;
    /// Torn/corrupt WAL tail records dropped (never-acknowledged data).
    uint64_t dropped_wal_records = 0;
    uint64_t dropped_wal_bytes = 0;
    uint64_t last_seq = 0;
  };

  /// Restores durable state and arms the WAL. Must be called before
  /// any ingest, on a Nous built with the same CuratedKb and
  /// PipelineConfig that produced the on-disk state. On a fresh
  /// directory this simply enables durable ingest. Fails if durability
  /// is unconfigured, already enabled, or ingest already happened.
  Result<RecoveryStats> Recover() EXCLUDES(kg_mutex());

  /// Recover(), discarding the stats — reads better at call sites
  /// that know the directory is fresh.
  Status EnableDurability();

  /// Forces a checkpoint now: atomically persists the full pipeline
  /// state and resets the WAL. Also triggered automatically every
  /// `durability.checkpoint_interval_batches` ingested batches.
  Status Checkpoint() EXCLUDES(kg_mutex());

  /// Whether durable ingest is armed (Recover succeeded).
  bool durable() const {
    return durability_enabled_.load(std::memory_order_acquire);
  }

  /// Feeds one article through the construction pipeline. With
  /// durability armed, the article is WAL-logged first and the call
  /// fails — with no state change — if logging fails ("never
  /// acknowledge what is not logged").
  Status Ingest(const Article& article) EXCLUDES(kg_mutex());

  /// Batch ingest: extraction fans out across the pipeline's worker
  /// pool; the fused KG is identical to one-at-a-time ingestion.
  Status IngestBatch(const std::vector<Article>& articles)
      EXCLUDES(kg_mutex());

  /// Drains a document stream, optionally finalizing afterwards.
  /// Stops at the first durability failure.
  Status IngestStream(DocumentStream* stream, bool finalize = true)
      EXCLUDES(kg_mutex());

  /// Ad-hoc text ingestion.
  Status IngestText(const std::string& text, const Date& date,
                    const std::string& source) EXCLUDES(kg_mutex());

  /// Fits topics + final confidence refresh. Idempotent-ish: may be
  /// called again after more ingestion.
  void Finalize() EXCLUDES(kg_mutex());

  /// Parses and executes a natural-language-like query (Figure 5).
  /// In snapshot-serving mode (the default) this runs entirely
  /// against the latest published KgSnapshot — no lock is taken, so
  /// a slow query can never stall ingest — consulting the versioned
  /// query cache first. With publishing disabled it falls back to
  /// reader-locked execution against the live graph.
  ///
  /// `snapshot_out`, when non-null, receives the snapshot the answer
  /// was computed against (null in the locked fallback) so callers
  /// can serialize the answer against the exact same view.
  Result<Answer> Ask(const std::string& question,
                     std::shared_ptr<const KgSnapshot>* snapshot_out =
                         nullptr) EXCLUDES(kg_mutex());

  /// Executes a pre-built structured query. Serves like Ask().
  Result<Answer> Execute(const Query& query,
                         std::shared_ptr<const KgSnapshot>* snapshot_out =
                             nullptr) EXCLUDES(kg_mutex());

  /// Variants for callers that already hold a ReaderMutexLock on
  /// kg_mutex() — e.g. the HTTP API, which serializes the answer under
  /// the same lock. Calling Ask()/Execute() while holding the lock
  /// would self-deadlock against a queued writer; the REQUIRES_SHARED
  /// annotations make either mistake (no lock, or double lock) a
  /// compile error under Clang.
  Result<Answer> AskUnlocked(const std::string& question) const
      REQUIRES_SHARED(kg_mutex());
  Result<Answer> ExecuteUnlocked(const Query& query) const
      REQUIRES_SHARED(kg_mutex());

  /// The pipeline's reader/writer lock, re-exported so lock-aware
  /// callers (HTTP API) can name one capability for both objects:
  /// RETURN_CAPABILITY aliases `nous.kg_mutex()` to the pipeline's
  /// underlying mutex member.
  AnnotatedSharedMutex& kg_mutex() const
      RETURN_CAPABILITY(pipeline_.kg_mutex()) {
    return pipeline_.kg_mutex();
  }

  const PropertyGraph& graph() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.graph();
  }
  /// Monotonic KG version of the live graph (see KgPipeline).
  uint64_t kg_version() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.kg_version();
  }
  const PipelineStats& stats() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.stats();
  }
  /// Walks the latest snapshot when one is published; otherwise
  /// read-locks the pipeline and walks the live graph.
  GraphStats ComputeStats() const EXCLUDES(kg_mutex());
  KgPipeline& pipeline() { return pipeline_; }
  const StreamingMiner* miner() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.miner();
  }

  /// Latest published KG snapshot; null when snapshot serving is off
  /// (Options::pipeline.publish_snapshots = false).
  std::shared_ptr<const KgSnapshot> snapshot() const {
    return pipeline_.snapshot();
  }

  /// The query cache, for stats inspection; null when disabled.
  const QueryCache* query_cache() const { return cache_.get(); }

  /// Registers a telemetry probe on `sampler` that exports the
  /// serving-tier gauges on every sampling tick: snapshot version and
  /// clone bytes, publish count, query-cache hit ratio, thread-pool
  /// queue depth, and p99 gauges derived from the publish / WAL
  /// latency histograms. The sampler must not outlive this Nous.
  void RegisterResourceProbes(ResourceSampler* sampler);

 private:
  /// Cache-checked execution against one immutable snapshot.
  Result<Answer> ExecuteOnSnapshot(
      const Query& query,
      const std::shared_ptr<const KgSnapshot>& snap) const;
  /// Durable log-then-apply for one batch; caller holds ingest_mutex_
  /// so WAL order always matches apply order.
  Status IngestBatchDurable(const Article* articles, size_t count)
      REQUIRES(ingest_mutex_) EXCLUDES(kg_mutex());

  Options options_;
  KgPipeline pipeline_;
  /// Versioned answer cache; internally synchronized, null when
  /// disabled. The pointer is immutable after construction.
  std::unique_ptr<QueryCache> cache_;  // lint: unguarded(see above)

  /// Serializes durable ingest so the WAL append order equals the
  /// pipeline apply order (lock order: ingest_mutex_ before the
  /// pipeline's kg_mutex, which IngestBatch acquires internally).
  /// Non-durable ingest never touches this mutex.
  AnnotatedMutex ingest_mutex_;
  std::unique_ptr<DurabilityManager> durability_ GUARDED_BY(ingest_mutex_);
  /// Fast-path flag mirroring `durability_ != nullptr`; flipped once
  /// by Recover() before any concurrent ingest exists.
  std::atomic<bool> durability_enabled_{false};
};

}  // namespace nous

#endif  // NOUS_CORE_NOUS_H_
