#ifndef NOUS_CORE_NOUS_H_
#define NOUS_CORE_NOUS_H_

#include <memory>
#include <string>

#include "core/pipeline.h"
#include "corpus/document_stream.h"
#include "graph/graph_stats.h"
#include "qa/query_engine.h"

namespace nous {

/// Top-level facade: the public API a downstream user programs against.
///
///   CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), {});
///   Nous nous(&kb);
///   nous.IngestStream(&stream);
///   nous.Finalize();
///   auto answer = nous.Ask("tell me about DJI");
///
/// Wraps the construction pipeline (§3), the streaming miner (§3.5),
/// and the question-answering engine (§3.6, Figure 5's query classes).
class Nous {
 public:
  struct Options {
    PipelineConfig pipeline;
    QueryEngineConfig query;
  };

  /// `kb` must outlive the instance.
  explicit Nous(const CuratedKb* kb, Options options = {});

  /// Feeds one article through the construction pipeline.
  void Ingest(const Article& article) EXCLUDES(kg_mutex());

  /// Drains a document stream, optionally finalizing afterwards.
  /// Articles are ingested in batches (KgPipeline::IngestBatch) so
  /// extraction fans out across the pipeline's worker pool; the fused
  /// KG is identical to one-at-a-time ingestion.
  void IngestStream(DocumentStream* stream, bool finalize = true)
      EXCLUDES(kg_mutex());

  /// Ad-hoc text ingestion.
  void IngestText(const std::string& text, const Date& date,
                  const std::string& source) EXCLUDES(kg_mutex());

  /// Fits topics + final confidence refresh. Idempotent-ish: may be
  /// called again after more ingestion.
  void Finalize() EXCLUDES(kg_mutex());

  /// Parses and executes a natural-language-like query (Figure 5).
  /// Takes the pipeline's read lock, so queries are safe to run while
  /// another thread ingests.
  Result<Answer> Ask(const std::string& question) EXCLUDES(kg_mutex());

  /// Executes a pre-built structured query. Read-locks like Ask().
  Result<Answer> Execute(const Query& query) EXCLUDES(kg_mutex());

  /// Variants for callers that already hold a ReaderMutexLock on
  /// kg_mutex() — e.g. the HTTP API, which serializes the answer under
  /// the same lock. Calling Ask()/Execute() while holding the lock
  /// would self-deadlock against a queued writer; the REQUIRES_SHARED
  /// annotations make either mistake (no lock, or double lock) a
  /// compile error under Clang.
  Result<Answer> AskUnlocked(const std::string& question) const
      REQUIRES_SHARED(kg_mutex());
  Result<Answer> ExecuteUnlocked(const Query& query) const
      REQUIRES_SHARED(kg_mutex());

  /// The pipeline's reader/writer lock, re-exported so lock-aware
  /// callers (HTTP API) can name one capability for both objects:
  /// RETURN_CAPABILITY aliases `nous.kg_mutex()` to the pipeline's
  /// underlying mutex member.
  AnnotatedSharedMutex& kg_mutex() const
      RETURN_CAPABILITY(pipeline_.kg_mutex()) {
    return pipeline_.kg_mutex();
  }

  const PropertyGraph& graph() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.graph();
  }
  const PipelineStats& stats() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.stats();
  }
  /// Read-locks the pipeline while walking the graph.
  GraphStats ComputeStats() const EXCLUDES(kg_mutex());
  KgPipeline& pipeline() { return pipeline_; }
  const StreamingMiner* miner() const REQUIRES_SHARED(kg_mutex()) {
    return pipeline_.miner();
  }

 private:
  Options options_;
  KgPipeline pipeline_;
};

}  // namespace nous

#endif  // NOUS_CORE_NOUS_H_
