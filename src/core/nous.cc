#include "core/nous.h"

#include <vector>

#include "common/thread_annotations.h"

namespace nous {

Nous::Nous(const CuratedKb* kb, Options options)
    : options_(std::move(options)), pipeline_(kb, options_.pipeline) {}

void Nous::Ingest(const Article& article) { pipeline_.Ingest(article); }

void Nous::IngestStream(DocumentStream* stream, bool finalize) {
  // Batches keep the worker pool busy on extraction while the commit
  // loop preserves stream order (see KgPipeline::IngestBatch).
  constexpr size_t kBatch = 64;
  std::vector<Article> batch;
  batch.reserve(kBatch);
  while (!stream->Done()) {
    batch.push_back(stream->Next());
    if (batch.size() == kBatch) {
      pipeline_.IngestBatch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) pipeline_.IngestBatch(batch);
  if (finalize) Finalize();
}

void Nous::IngestText(const std::string& text, const Date& date,
                      const std::string& source) {
  pipeline_.IngestText(text, date, source);
}

void Nous::Finalize() { pipeline_.Finalize(); }

Result<Answer> Nous::Ask(const std::string& question) {
  ReaderMutexLock lock(kg_mutex());
  return AskUnlocked(question);
}

Result<Answer> Nous::Execute(const Query& query) {
  ReaderMutexLock lock(kg_mutex());
  return ExecuteUnlocked(query);
}

Result<Answer> Nous::AskUnlocked(const std::string& question) const {
  QueryEngine engine(&pipeline_.graph(), pipeline_.miner(),
                     options_.query, pipeline_.miner_graph());
  return engine.ExecuteText(question);
}

Result<Answer> Nous::ExecuteUnlocked(const Query& query) const {
  QueryEngine engine(&pipeline_.graph(), pipeline_.miner(),
                     options_.query, pipeline_.miner_graph());
  return engine.Execute(query);
}

GraphStats Nous::ComputeStats() const {
  ReaderMutexLock lock(kg_mutex());
  return ComputeGraphStats(graph());
}

}  // namespace nous
