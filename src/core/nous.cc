#include "core/nous.h"

#include <cstdlib>
#include <string_view>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_annotations.h"
#include "durability/wal_codec.h"
#include "obs/metrics.h"
#include "qa/sharded_view.h"

namespace nous {

namespace {

/// Parses the N of an "adhoc_N" article id (what IngestText assigns);
/// replay uses it to fast-forward the pipeline's ad-hoc counter past
/// every id the crashed instance already handed out.
bool ParseAdhocId(const std::string& id, size_t* value) {
  constexpr std::string_view kPrefix = "adhoc_";
  if (id.size() <= kPrefix.size() ||
      std::string_view(id).substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  const char* digits = id.c_str() + kPrefix.size();
  char* end = nullptr;
  unsigned long long n = std::strtoull(digits, &end, 10);
  if (end == digits || *end != '\0') return false;
  *value = static_cast<size_t>(n);
  return true;
}

}  // namespace

Nous::Options Nous::NormalizeOptions(Options options) {
  if (options.shards > kMaxShards) options.shards = kMaxShards;
  if (options.shards > 1) {
    // Sharded queries are served from the planner snapshot plus the
    // shard views; without published snapshots there is nothing
    // coherent to compose.
    options.pipeline.publish_snapshots = true;
  }
  return options;
}

Nous::Nous(const CuratedKb* kb, Options options)
    : options_(NormalizeOptions(std::move(options))),
      pipeline_(kb, options_.pipeline) {
  if (options_.query_cache.enabled && options_.query_cache.entries > 0) {
    cache_ = std::make_unique<QueryCache>(options_.query_cache.entries);
  }
  if (options_.shards > 1) {
    pipeline_.EnableOpCapture();
    shards_ = std::make_unique<ShardSet>(options_.shards);
    {
      ReaderMutexLock lock(kg_mutex());
      shards_->Bootstrap(pipeline_.graph(), pipeline_.kg_version());
    }
    shards_->Start();
  }
}

Result<Nous::RecoveryStats> Nous::Recover() {
  if (options_.durability.dir.empty()) {
    return Status::FailedPrecondition(
        "Recover(): Options::durability.dir is empty");
  }
  MutexLock lock(ingest_mutex_);
  if (durability_ != nullptr || durable()) {
    return Status::FailedPrecondition("durability is already enabled");
  }
  {
    ReaderMutexLock read(kg_mutex());
    if (pipeline_.stats().documents != 0) {
      return Status::FailedPrecondition(
          "Recover() must run before any ingest");
    }
  }
  if (shards_ != nullptr) return RecoverShardedLocked();
  auto manager = std::make_unique<DurabilityManager>(options_.durability);
  NOUS_ASSIGN_OR_RETURN(DurabilityManager::RecoveredState recovered,
                        manager->Recover());
  RecoveryStats stats;
  stats.dropped_wal_records = recovered.dropped_records;
  stats.dropped_wal_bytes = recovered.dropped_bytes;
  uint64_t last_seq = 0;
  if (recovered.has_checkpoint) {
    NOUS_RETURN_IF_ERROR(pipeline_.LoadState(recovered.checkpoint.state));
    stats.restored_checkpoint = true;
    last_seq = recovered.checkpoint.last_applied_seq;
  }
  size_t adhoc_floor = 0;
  for (const WalRecord& record : recovered.replay) {
    NOUS_ASSIGN_OR_RETURN(std::vector<Article> batch,
                          DecodeArticleBatch(record.payload));
    for (const Article& article : batch) {
      size_t n = 0;
      if (ParseAdhocId(article.id, &n) && n + 1 > adhoc_floor) {
        adhoc_floor = n + 1;
      }
    }
    pipeline_.IngestBatch(batch);
    last_seq = record.seq;
    ++stats.replayed_batches;
    stats.replayed_articles += batch.size();
  }
  if (adhoc_floor > 0) pipeline_.EnsureAdhocCounterAtLeast(adhoc_floor);
  NOUS_RETURN_IF_ERROR(manager->OpenWal(last_seq));
  stats.last_seq = last_seq;
  durability_ = std::move(manager);
  durability_enabled_.store(true, std::memory_order_release);
  PublishCommitLocked(last_seq);
  return stats;
}

Result<Nous::RecoveryStats> Nous::RecoverShardedLocked() {
  NOUS_ASSIGN_OR_RETURN(
      ShardRecoveryResult recovered,
      shards_->RecoverDurable(options_.durability.dir));
  RecoveryStats stats;
  stats.dropped_wal_records = recovered.dropped_wal_records;
  stats.dropped_wal_bytes = recovered.dropped_wal_bytes;
  uint64_t last_seq = 0;
  if (recovered.restored_checkpoint) {
    NOUS_RETURN_IF_ERROR(pipeline_.LoadState(recovered.planner_state));
    stats.restored_checkpoint = true;
    last_seq = recovered.checkpoint_seq;
  }
  // Nothing captured so far corresponds to shard state we kept.
  (void)pipeline_.TakeCapturedOps();
  {
    ReaderMutexLock read(kg_mutex());
    if (shards_->shards_restored()) {
      // Every shard graph came off its own checkpoint image; only the
      // in-memory router tables need rebuilding.
      shards_->RebuildRouter(pipeline_.graph());
    } else {
      shards_->Bootstrap(pipeline_.graph(), pipeline_.kg_version());
    }
  }
  size_t adhoc_floor = 0;
  for (const WalRecord& record : recovered.replay) {
    NOUS_ASSIGN_OR_RETURN(std::vector<Article> batch,
                          DecodeArticleBatch(record.payload));
    for (const Article& article : batch) {
      size_t n = 0;
      if (ParseAdhocId(article.id, &n) && n + 1 > adhoc_floor) {
        adhoc_floor = n + 1;
      }
    }
    pipeline_.IngestBatch(batch);
    std::vector<KgOpBatch> ops = pipeline_.TakeCapturedOps();
    uint64_t version = 0;
    {
      ReaderMutexLock read(kg_mutex());
      version = pipeline_.kg_version();
    }
    shards_->ApplySynchronously(std::move(ops), version);
    last_seq = record.seq;
    ++stats.replayed_batches;
    stats.replayed_articles += batch.size();
  }
  if (adhoc_floor > 0) pipeline_.EnsureAdhocCounterAtLeast(adhoc_floor);
  NOUS_RETURN_IF_ERROR(shards_->StartDurable(
      options_.durability.dir, options_.durability, last_seq));
  // Unconditional checkpoint: collapses any gap-cut WAL tails (records
  // dropped past a seq gap still sit in sibling shard WALs) so the
  // next recovery starts from a clean composite image.
  NOUS_RETURN_IF_ERROR(ShardedCheckpointLocked());
  stats.last_seq = last_seq;
  durability_enabled_.store(true, std::memory_order_release);
  PublishCommitLocked(last_seq);
  return stats;
}

Status Nous::ShardedCheckpointLocked() {
  std::string state = pipeline_.SaveState();
  uint64_t version = 0;
  {
    ReaderMutexLock read(kg_mutex());
    version = pipeline_.kg_version();
  }
  return shards_->WriteCheckpoint(state, version);
}

void Nous::CommitToShardsLocked(uint64_t seq) {
  std::vector<KgOpBatch> ops = pipeline_.TakeCapturedOps();
  uint64_t version = 0;
  {
    ReaderMutexLock read(kg_mutex());
    version = pipeline_.kg_version();
  }
  shards_->Commit(std::move(ops), version, seq);
}

Status Nous::IngestBatchSharded(const Article* articles, size_t count,
                                uint64_t* seq_out) {
  *seq_out = 0;
  if (!durable()) {
    pipeline_.IngestBatch(articles, count);
    CommitToShardsLocked(0);
    return Status::Ok();
  }
  // Log before apply, same contract as the unsharded durable path;
  // the fsync itself happens on the seq's home lane, off this thread.
  std::string payload = EncodeArticleBatch(articles, count);
  const uint64_t seq = shards_->NextSeq();
  NOUS_RETURN_IF_ERROR(shards_->AppendWal(seq, payload));
  pipeline_.IngestBatch(articles, count);
  CommitToShardsLocked(seq);
  PublishCommitLocked(seq);
  if (shards_->ShouldCheckpoint()) {
    NOUS_RETURN_IF_ERROR(ShardedCheckpointLocked());
  }
  *seq_out = seq;
  return Status::Ok();
}

void Nous::DrainShards() {
  if (shards_ != nullptr) shards_->Drain();
}

std::vector<uint64_t> Nous::CompositeVersion() const {
  if (shards_ == nullptr) return {};
  return shards_->CompositeVersion();
}

Status Nous::EnableDurability() {
  Result<RecoveryStats> result = Recover();
  return result.ok() ? Status::Ok() : result.status();
}

Status Nous::Checkpoint() {
  MutexLock lock(ingest_mutex_);
  if (shards_ != nullptr) {
    if (!durable()) {
      return Status::FailedPrecondition("durability is not enabled");
    }
    const uint64_t seq = shards_->last_seq();
    NOUS_RETURN_IF_ERROR(ShardedCheckpointLocked());
    PublishCommitLocked(seq);
    return Status::Ok();
  }
  if (durability_ == nullptr) {
    return Status::FailedPrecondition("durability is not enabled");
  }
  std::string state = pipeline_.SaveState();
  const uint64_t seq = durability_->last_logged_seq();
  NOUS_RETURN_IF_ERROR(durability_->WriteCheckpoint(state));
  const uint64_t kgv = PublishCommitLocked(seq);
  if (listener_ != nullptr) listener_->OnCheckpoint(seq, state, kgv);
  return Status::Ok();
}

uint64_t Nous::PublishCommitLocked(uint64_t seq) {
  uint64_t kgv = 0;
  {
    ReaderMutexLock lock(kg_mutex());
    kgv = pipeline_.kg_version();
  }
  durable_seq_.store(seq, std::memory_order_release);
  durable_kg_version_.store(kgv, std::memory_order_release);
  return kgv;
}

Status Nous::IngestBatchDurable(const Article* articles, size_t count) {
  // Log before apply: a batch that cannot reach the WAL is rejected
  // with the pipeline untouched, so nothing unlogged is ever
  // acknowledged. A torn append (crash or injected fault) leaves a
  // CRC-invalid tail the next Recover() drops.
  std::string payload = EncodeArticleBatch(articles, count);
  NOUS_ASSIGN_OR_RETURN(uint64_t seq, durability_->LogBatch(payload));
  pipeline_.IngestBatch(articles, count);
  const uint64_t kgv = PublishCommitLocked(seq);
  if (listener_ != nullptr) listener_->OnCommit(seq, payload, kgv);
  if (durability_->ShouldCheckpoint()) {
    std::string state = pipeline_.SaveState();
    NOUS_RETURN_IF_ERROR(durability_->WriteCheckpoint(state));
    if (listener_ != nullptr) listener_->OnCheckpoint(seq, state, kgv);
  }
  return Status::Ok();
}

Status Nous::Ingest(const Article& article) {
  if (shards_ != nullptr) {
    uint64_t seq = 0;
    {
      MutexLock lock(ingest_mutex_);
      NOUS_RETURN_IF_ERROR(IngestBatchSharded(&article, 1, &seq));
    }
    // Wait for the home lane's fsync *outside* the ingest mutex, so
    // other writers' appends overlap this batch's flush.
    return shards_->WaitDurable(seq);
  }
  if (!durable()) {
    pipeline_.Ingest(article);
    return Status::Ok();
  }
  MutexLock lock(ingest_mutex_);
  return IngestBatchDurable(&article, 1);
}

Status Nous::IngestBatch(const std::vector<Article>& articles) {
  if (articles.empty()) return Status::Ok();
  if (shards_ != nullptr) {
    uint64_t seq = 0;
    {
      MutexLock lock(ingest_mutex_);
      NOUS_RETURN_IF_ERROR(
          IngestBatchSharded(articles.data(), articles.size(), &seq));
    }
    return shards_->WaitDurable(seq);
  }
  if (!durable()) {
    pipeline_.IngestBatch(articles);
    return Status::Ok();
  }
  MutexLock lock(ingest_mutex_);
  return IngestBatchDurable(articles.data(), articles.size());
}

Status Nous::IngestStream(DocumentStream* stream, bool finalize) {
  // Batches keep the worker pool busy on extraction while the commit
  // loop preserves stream order (see KgPipeline::IngestBatch). One
  // batch is also the WAL commit unit in durable mode.
  constexpr size_t kBatch = 64;
  std::vector<Article> batch;
  batch.reserve(kBatch);
  while (!stream->Done()) {
    batch.push_back(stream->Next());
    if (batch.size() == kBatch) {
      NOUS_RETURN_IF_ERROR(IngestBatch(batch));
      batch.clear();
    }
  }
  NOUS_RETURN_IF_ERROR(IngestBatch(batch));
  if (finalize) Finalize();
  return Status::Ok();
}

Status Nous::IngestText(const std::string& text, const Date& date,
                        const std::string& source) {
  if (shards_ == nullptr && !durable()) {
    pipeline_.IngestText(text, date, source);
    return Status::Ok();
  }
  // Reserve the concrete "adhoc_N" id up front so the WAL logs the
  // article exactly as the pipeline will ingest it.
  Article article;
  article.id = pipeline_.ReserveAdhocId();
  article.date = date;
  article.source = source;
  article.text = text;
  if (shards_ != nullptr) {
    uint64_t seq = 0;
    {
      MutexLock lock(ingest_mutex_);
      NOUS_RETURN_IF_ERROR(IngestBatchSharded(&article, 1, &seq));
    }
    return shards_->WaitDurable(seq);
  }
  MutexLock lock(ingest_mutex_);
  return IngestBatchDurable(&article, 1);
}

void Nous::Finalize() {
  if (shards_ != nullptr) {
    MutexLock lock(ingest_mutex_);
    pipeline_.Finalize();
    CommitToShardsLocked(0);
    if (durable()) {
      // Same rationale as the unsharded branch below: Finalize's
      // mutations live outside the WAL, so only a checkpoint makes
      // them crash-safe.
      Status status = ShardedCheckpointLocked();
      if (!status.ok()) {
        NOUS_LOG(Warning)
            << "Finalize(): sharded checkpoint failed, durable state "
               "lags the finalized KG: "
            << status.ToString();
        return;
      }
      PublishCommitLocked(shards_->last_seq());
    }
    return;
  }
  if (!durable()) {
    pipeline_.Finalize();
    return;
  }
  // Finalize mutates the KG outside the WAL (topic fit, confidence
  // refresh), so durable mode must capture its effect in a checkpoint
  // — otherwise a restart or a follower replaying the WAL would land
  // on a different KG than the one that served queries.
  MutexLock lock(ingest_mutex_);
  pipeline_.Finalize();
  std::string state = pipeline_.SaveState();
  const uint64_t seq = durability_->last_logged_seq();
  Status status = durability_->WriteCheckpoint(state);
  if (!status.ok()) {
    NOUS_LOG(Warning) << "Finalize(): checkpoint failed, durable state "
                         "lags the finalized KG: "
                      << status.ToString();
    return;
  }
  const uint64_t kgv = PublishCommitLocked(seq);
  if (listener_ != nullptr) listener_->OnCheckpoint(seq, state, kgv);
}

void Nous::SetCommitListener(CommitListener* listener) {
  MutexLock lock(ingest_mutex_);
  listener_ = listener;
}

Result<Nous::ReplicationImage> Nous::CaptureReplicationImage() {
  if (shards_ != nullptr) {
    return Status::FailedPrecondition(
        "replication is not supported in sharded mode");
  }
  MutexLock lock(ingest_mutex_);
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "CaptureReplicationImage(): durability is not enabled");
  }
  ReplicationImage image;
  image.seq = durability_->last_logged_seq();
  image.state = pipeline_.SaveState();
  {
    ReaderMutexLock read(kg_mutex());
    image.kg_version = pipeline_.kg_version();
  }
  return image;
}

Status Nous::ApplyReplicatedBatch(uint64_t seq, const std::string& payload,
                                  uint64_t expected_kg_version) {
  if (shards_ != nullptr) {
    return Status::FailedPrecondition(
        "replication is not supported in sharded mode");
  }
  MutexLock lock(ingest_mutex_);
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "ApplyReplicatedBatch(): durability is not enabled");
  }
  const uint64_t local = durability_->last_logged_seq();
  if (seq != local + 1) {
    return Status::FailedPrecondition(
        "replicated batch seq " + std::to_string(seq) +
        " does not follow local seq " + std::to_string(local));
  }
  // Decode before logging: a payload that cannot decode must not
  // enter the local WAL (recovery would choke on it).
  NOUS_ASSIGN_OR_RETURN(std::vector<Article> batch,
                        DecodeArticleBatch(payload));
  NOUS_ASSIGN_OR_RETURN(uint64_t logged, durability_->LogBatch(payload));
  (void)logged;
  size_t adhoc_floor = 0;
  for (const Article& article : batch) {
    size_t n = 0;
    if (ParseAdhocId(article.id, &n) && n + 1 > adhoc_floor) {
      adhoc_floor = n + 1;
    }
  }
  pipeline_.IngestBatch(batch);
  if (adhoc_floor > 0) pipeline_.EnsureAdhocCounterAtLeast(adhoc_floor);
  const uint64_t kgv = PublishCommitLocked(seq);
  if (listener_ != nullptr) listener_->OnCommit(seq, payload, kgv);
  if (expected_kg_version != 0 && kgv != expected_kg_version) {
    return Status::DataLoss(
        "replica diverged: KG version " + std::to_string(kgv) +
        " after seq " + std::to_string(seq) + ", leader had " +
        std::to_string(expected_kg_version));
  }
  if (durability_->ShouldCheckpoint()) {
    NOUS_RETURN_IF_ERROR(
        durability_->WriteCheckpoint(pipeline_.SaveState()));
  }
  return Status::Ok();
}

Status Nous::ApplyReplicatedCheckpoint(uint64_t seq,
                                       const std::string& state) {
  if (shards_ != nullptr) {
    return Status::FailedPrecondition(
        "replication is not supported in sharded mode");
  }
  MutexLock lock(ingest_mutex_);
  if (durability_ == nullptr) {
    return Status::FailedPrecondition(
        "ApplyReplicatedCheckpoint(): durability is not enabled");
  }
  NOUS_RETURN_IF_ERROR(pipeline_.LoadState(state));
  NOUS_RETURN_IF_ERROR(durability_->InstallCheckpoint(seq, state));
  const uint64_t kgv = PublishCommitLocked(seq);
  if (listener_ != nullptr) listener_->OnCheckpoint(seq, state, kgv);
  return Status::Ok();
}

Result<Answer> Nous::Ask(const std::string& question,
                         std::shared_ptr<const KgSnapshot>* snapshot_out) {
  NOUS_ASSIGN_OR_RETURN(Query query, ParseQuery(question));
  return Execute(query, snapshot_out);
}

Result<Answer> Nous::Execute(const Query& query,
                             std::shared_ptr<const KgSnapshot>* snapshot_out) {
  std::shared_ptr<const KgSnapshot> snap = pipeline_.snapshot();
  if (snapshot_out != nullptr) *snapshot_out = snap;
  if (snap == nullptr) {
    // Snapshot publishing disabled: the pre-snapshot locked path.
    ReaderMutexLock lock(kg_mutex());
    return ExecuteUnlocked(query);
  }
  if (shards_ != nullptr) return ExecuteOnShards(query, snap);
  return ExecuteOnSnapshot(query, snap);
}

Result<Answer> Nous::ExecuteOnShards(
    const Query& query,
    const std::shared_ptr<const KgSnapshot>& snap) const {
  std::vector<std::shared_ptr<const ShardView>> views =
      shards_->CurrentViews();
  for (const auto& view : views) {
    if (view == nullptr || view->version != snap->version()) {
      // A lane has not yet published this version (or raced past it):
      // the planner snapshot alone is bit-identical, so serve from it
      // instead of blocking on the lanes.
      return ExecuteOnSnapshot(query, snap);
    }
  }
  std::string key;
  if (cache_ != nullptr) {
    key = CanonicalCacheKey(query);
    Answer cached;
    // Answers are identical either way, so the cache is safely shared
    // with the planner-snapshot fallback path at the same version.
    if (cache_->Lookup(key, snap->version(), &cached)) return cached;
  }
  ShardedGraphView view(&snap->graph(), std::move(views));
  QueryEngineT<ShardedGraphView> engine(&view, snap->patterns(),
                                        options_.query);
  NOUS_ASSIGN_OR_RETURN(Answer answer, engine.Execute(query));
  if (cache_ != nullptr) cache_->Insert(key, snap->version(), answer);
  return answer;
}

Result<Answer> Nous::ExecuteOnSnapshot(
    const Query& query,
    const std::shared_ptr<const KgSnapshot>& snap) const {
  std::string key;
  if (cache_ != nullptr) {
    key = CanonicalCacheKey(query);
    Answer cached;
    if (cache_->Lookup(key, snap->version(), &cached)) return cached;
  }
  QueryEngine engine(&snap->graph(), snap->patterns(), options_.query);
  NOUS_ASSIGN_OR_RETURN(Answer answer, engine.Execute(query));
  if (cache_ != nullptr) cache_->Insert(key, snap->version(), answer);
  return answer;
}

Result<Answer> Nous::AskUnlocked(const std::string& question) const {
  QueryEngine engine(&pipeline_.graph(), pipeline_.miner(),
                     options_.query, pipeline_.miner_graph());
  return engine.ExecuteText(question);
}

Result<Answer> Nous::ExecuteUnlocked(const Query& query) const {
  QueryEngine engine(&pipeline_.graph(), pipeline_.miner(),
                     options_.query, pipeline_.miner_graph());
  return engine.Execute(query);
}

GraphStats Nous::ComputeStats() const {
  if (auto snap = pipeline_.snapshot()) {
    return ComputeGraphStats(snap->graph());
  }
  ReaderMutexLock lock(kg_mutex());
  return ComputeGraphStats(graph());
}

void Nous::RegisterResourceProbes(ResourceSampler* sampler) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  Gauge* version = registry.GetGauge(
      "nous_kg_version", "Version of the latest published KG snapshot");
  Gauge* graph_bytes = registry.GetGauge(
      "nous_snapshot_graph_bytes",
      "Estimated heap bytes of the latest snapshot's graph "
      "(shared + private)");
  Gauge* graph_shared_bytes = registry.GetGauge(
      "nous_snapshot_graph_shared_bytes",
      "Snapshot graph bytes in COW chunks shared with the live graph "
      "or other snapshots");
  Gauge* graph_private_bytes = registry.GetGauge(
      "nous_snapshot_graph_private_bytes",
      "Snapshot graph bytes private to the latest snapshot — its true "
      "retention cost over the live graph");
  Gauge* publishes = registry.GetGauge(
      "nous_snapshot_publishes",
      "Snapshots installed in the store since process start");
  Gauge* hit_ratio = registry.GetGauge(
      "nous_query_cache_hit_ratio",
      "Query-cache hits / lookups since process start (0 when unused)");
  Gauge* queue_depth = registry.GetGauge(
      "nous_thread_pool_queue_depth",
      "Tasks waiting in the pipeline worker pool queue");
  Gauge* publish_p99 = registry.GetGauge(
      "nous_snapshot_publish_p99_seconds",
      "p99 of snapshot publish latency (from the span histogram)");
  Gauge* wal_append_p99 = registry.GetGauge(
      "nous_wal_append_p99_seconds",
      "p99 of WAL append latency (from the span histogram)");
  Gauge* wal_fsync_p99 = registry.GetGauge(
      "nous_wal_fsync_p99_seconds",
      "p99 of WAL fsync latency (from the span histogram)");
  sampler->AddProbe([this, &registry, version, graph_bytes,
                     graph_shared_bytes, graph_private_bytes, publishes,
                     hit_ratio, queue_depth, publish_p99, wal_append_p99,
                     wal_fsync_p99] {
    const SnapshotStore& store = pipeline_.snapshot_store();
    if (auto snap = store.Current()) {
      version->Set(static_cast<double>(snap->version()));
      // Re-sampled live (not the publish-time figure): sharing decays
      // as ingest unshares chunks, and the gauges should show that.
      CowFootprint fp = snap->graph().Footprint();
      graph_bytes->Set(static_cast<double>(fp.total_bytes()));
      graph_shared_bytes->Set(static_cast<double>(fp.shared_bytes));
      graph_private_bytes->Set(static_cast<double>(fp.private_bytes));
    }
    publishes->Set(static_cast<double>(store.publish_count()));
    if (cache_ != nullptr) {
      QueryCache::Stats stats = cache_->stats();
      double lookups = static_cast<double>(stats.hits + stats.misses);
      hit_ratio->Set(lookups > 0 ? static_cast<double>(stats.hits) / lookups
                                 : 0.0);
    }
    if (ThreadPool* pool = pipeline_.pool()) {
      queue_depth->Set(static_cast<double>(pool->QueueDepth()));
    }
    for (const auto& row : registry.HistogramRows()) {
      if (row.name == "nous_snapshot_publish_latency_seconds") {
        publish_p99->Set(row.p99);
      } else if (row.name == "nous_wal_append_latency_seconds") {
        wal_append_p99->Set(row.p99);
      } else if (row.name == "nous_wal_fsync_latency_seconds") {
        wal_fsync_p99->Set(row.p99);
      }
    }
  });
}

}  // namespace nous
