#include "core/nous.h"

namespace nous {

Nous::Nous(const CuratedKb* kb, Options options)
    : options_(std::move(options)), pipeline_(kb, options_.pipeline) {}

void Nous::Ingest(const Article& article) { pipeline_.Ingest(article); }

void Nous::IngestStream(DocumentStream* stream, bool finalize) {
  while (!stream->Done()) {
    pipeline_.Ingest(stream->Next());
  }
  if (finalize) Finalize();
}

void Nous::IngestText(const std::string& text, const Date& date,
                      const std::string& source) {
  pipeline_.IngestText(text, date, source);
}

void Nous::Finalize() { pipeline_.Finalize(); }

Result<Answer> Nous::Ask(const std::string& question) {
  QueryEngine engine(&pipeline_.graph(), pipeline_.miner(),
                     options_.query, pipeline_.miner_graph());
  return engine.ExecuteText(question);
}

Result<Answer> Nous::Execute(const Query& query) {
  QueryEngine engine(&pipeline_.graph(), pipeline_.miner(),
                     options_.query, pipeline_.miner_graph());
  return engine.Execute(query);
}

}  // namespace nous
