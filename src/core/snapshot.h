#ifndef NOUS_CORE_SNAPSHOT_H_
#define NOUS_CORE_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "core/pipeline_stats.h"
#include "graph/property_graph.h"
#include "qa/query_engine.h"

namespace nous {

/// An immutable, consistent view of the fused KG, published by the
/// pipeline after every commit (DESIGN.md §5.11). Queries execute
/// against a snapshot without touching kg_mutex, so one slow beam
/// search can never stall ingest — and ingest can never mutate the
/// graph under a running query.
///
/// `version` is the pipeline's monotonic KG version: it increments on
/// every mutating operation (ingest call, batch, finalize), survives
/// checkpoints (SaveState/LoadState), and keys the query cache — a
/// cached answer is valid exactly while the version it was computed
/// at is still current.
/// Miner patterns pre-rendered against the window graph's
/// dictionaries, tagged with the miner generation they were rendered
/// at. Publish reuses the previous set (a shared_ptr bump) whenever
/// the generation is unchanged — re-stringifying every closed
/// frequent pattern under the reader lock was a fixed per-publish tax.
struct RenderedPatternSet {
  uint64_t miner_generation = 0;
  std::vector<RenderedPattern> patterns;
};

/// Deeply immutable after construction: every accessor is const and
/// returns `const&` / `shared_ptr<const ...>`, so holders of a
/// snapshot — even through a non-const reference — cannot mutate the
/// published state. The nous-snapshot-mutation clang-tidy check
/// (tools/nous-tidy, DESIGN.md §5.14) enforces the residue the type
/// system cannot: const_casts and non-const escapes of
/// snapshot-reachable state.
class KgSnapshot {
 public:
  /// Assembled by KgPipeline::PublishSnapshot, the only producer. The
  /// graph footprint estimate is computed here, outside the pipeline
  /// locks, so readers report bytes without re-walking chunks.
  KgSnapshot(uint64_t version, PropertyGraph graph,
             std::shared_ptr<const RenderedPatternSet> pattern_set,
             PipelineStats stats);

  KgSnapshot(const KgSnapshot&) = delete;
  KgSnapshot& operator=(const KgSnapshot&) = delete;

  /// The pipeline's monotonic KG version this snapshot was cut at.
  uint64_t version() const { return version_; }

  /// O(1) copy-on-write clone of the fused KG (identical ids, slot
  /// layout, adjacency order): all chunks are shared with the live
  /// graph at publish time, and later ingest unshares only the chunks
  /// it touches (DESIGN.md §5.13).
  const PropertyGraph& graph() const { return graph_; }

  /// Rendered miner patterns; shared across snapshots while the miner
  /// generation is unchanged. Null when no patterns were ever rendered.
  std::shared_ptr<const RenderedPatternSet> pattern_set() const {
    return pattern_set_;
  }

  /// Pipeline counters as of version() (lock-free /api/stats).
  const PipelineStats& stats() const { return stats_; }

  /// Estimated heap bytes of graph() at publish time (shared +
  /// private; see PropertyGraph::Footprint). The live shared/private
  /// split is sampled on demand by the ResourceSampler gauges
  /// nous_snapshot_graph_{shared,private}_bytes.
  size_t approx_graph_bytes() const { return approx_graph_bytes_; }

  /// Patterns for query execution (empty set when none rendered yet).
  const std::vector<RenderedPattern>& patterns() const;

 private:
  uint64_t version_ = 0;
  PropertyGraph graph_;
  std::shared_ptr<const RenderedPatternSet> pattern_set_;
  PipelineStats stats_;
  size_t approx_graph_bytes_ = 0;
};

/// Holds the latest published snapshot behind an atomic shared_ptr
/// swap. Readers copy the pointer with a single atomic load — no
/// mutex anywhere on the query hot path — and the snapshot itself is
/// immutable, outliving the store entry for as long as any reader
/// holds it.
class SnapshotStore {
 public:
  /// Installs `snapshot` if its version is newer than the current one.
  /// Publication is monotonic (CAS loop): two publishers can race
  /// (each cloned under a reader lock, so each snapshot is internally
  /// consistent and correctly labeled), and the older label simply
  /// loses.
  void Publish(std::shared_ptr<const KgSnapshot> snapshot);

  /// Latest published snapshot; null before the first Publish.
  std::shared_ptr<const KgSnapshot> Current() const {
    return current_.load(std::memory_order_acquire);
  }

  /// Version of the latest published snapshot (0 before the first).
  uint64_t version() const {
    std::shared_ptr<const KgSnapshot> cur = Current();
    return cur == nullptr ? 0 : cur->version();
  }

  /// Snapshots actually installed over the store's lifetime (losers of
  /// the monotonicity race are not counted). /api/stats reports this
  /// as the snapshot-store entry count.
  uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  /// Internally synchronized; no GUARDED_BY needed.
  std::atomic<std::shared_ptr<const KgSnapshot>> current_;
  std::atomic<uint64_t> publishes_{0};
};

}  // namespace nous

#endif  // NOUS_CORE_SNAPSHOT_H_
