#include "core/shard_set.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "durability/checkpoint.h"
#include "durability/fs_util.h"

namespace nous {

namespace {

/// Locates planner edge slot `gid` in a shard's ascending edge_gids
/// sidecar. CowVec has no iterators, so this is a hand-rolled binary
/// search over operator[].
std::optional<EdgeId> FindLocalEdge(const CowVec<EdgeId>& edge_gids,
                                    EdgeId gid) {
  size_t lo = 0;
  size_t hi = edge_gids.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (edge_gids[mid] < gid) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < edge_gids.size() && edge_gids[lo] == gid) {
    return static_cast<EdgeId>(lo);
  }
  return std::nullopt;
}

}  // namespace

ShardSet::ShardSet(size_t num_shards) {
  if (num_shards < 2) num_shards = 2;
  if (num_shards > kMaxShards) num_shards = kMaxShards;
  shards_.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    shards_.push_back(std::make_unique<Shard>(k));
  }
}

ShardSet::~ShardSet() {
  StopLanes();
  for (auto& shard : shards_) {
    if (shard->wal.is_open()) {
      // Destructor path: nowhere to propagate a close error; recovery
      // treats an unsynced tail as a torn write.
      (void)shard->wal.Close();
    }
  }
}

void ShardSet::StopLanes() {
  for (auto& shard : shards_) {
    {
      MutexLock lock(shard->queue_mutex);
      shard->stop = true;
    }
    shard->queue_cv.notify_all();
    if (shard->lane.joinable()) shard->lane.join();
  }
}

std::string ShardSet::ShardDir(const std::string& dir, size_t k) {
  return dir + "/wal/shard-" + std::to_string(k);
}

std::string ShardSet::ManifestPath(const std::string& dir) const {
  return dir + "/wal/manifest.nous";
}

std::string ShardSet::PlannerCheckpointPath(const std::string& dir) const {
  return dir + "/checkpoint.nous";
}

// ---------------------------------------------------------------------------
// Routing

void ShardSet::RouteBatch(const KgOpBatch& batch,
                          std::vector<std::vector<KgOp>>* per_shard) {
  const size_t n = shards_.size();
  auto ensure_vertex_tables = [this](VertexId gid) {
    if (gid >= labels_.size()) {
      labels_.resize(gid + 1);
      type_names_.resize(gid + 1);
      homes_.resize(gid + 1, 0);
      seen_.resize(gid + 1, 0);
    }
  };
  // Makes `gid` resolvable on shard `k`, synthesizing a ghost define
  // (label + currently known type, no topics) when the real define was
  // homed elsewhere. Ghost copies are identity stubs for edge
  // endpoints; the planner snapshot stays authoritative for vertex
  // properties, so a ghost's type going stale later is harmless.
  auto ensure_on_shard = [this, per_shard](VertexId gid, size_t k) {
    const uint32_t bit = 1u << k;
    if (seen_[gid] & bit) return;
    seen_[gid] |= bit;
    KgOp ghost;
    ghost.kind = KgOp::Kind::kDefineVertex;
    ghost.vertex = gid;
    ghost.label = labels_[gid];
    ghost.type_name = type_names_[gid];
    (*per_shard)[k].push_back(std::move(ghost));
  };

  for (const KgOp& op : batch.ops) {
    switch (op.kind) {
      case KgOp::Kind::kDefineVertex: {
        ensure_vertex_tables(op.vertex);
        labels_[op.vertex] = op.label;
        type_names_[op.vertex] = op.type_name;
        const size_t home = ShardOfFoldedLabel(ToLower(op.label), n);
        homes_[op.vertex] = static_cast<uint8_t>(home);
        seen_[op.vertex] |= 1u << home;
        (*per_shard)[home].push_back(op);
        break;
      }
      case KgOp::Kind::kAddEdge: {
        // An edge lives on its subject's home shard (adjacency
        // scatter-gather reads OutEdges from exactly one shard).
        const size_t home = homes_[op.subject];
        if (op.edge >= edge_homes_.size()) {
          edge_homes_.resize(op.edge + 1, 0);
        }
        edge_homes_[op.edge] = static_cast<uint8_t>(home);
        ensure_on_shard(op.subject, home);
        ensure_on_shard(op.object, home);
        (*per_shard)[home].push_back(op);
        break;
      }
      case KgOp::Kind::kSetEdgeConfidence: {
        (*per_shard)[edge_homes_[op.edge]].push_back(op);
        break;
      }
      case KgOp::Kind::kSetVertexType: {
        type_names_[op.vertex] = op.type_name;
        (*per_shard)[homes_[op.vertex]].push_back(op);
        break;
      }
      case KgOp::Kind::kSetVertexTopics: {
        // Home shard is authoritative for vertex properties in the
        // canonical merge; ghost copies never carry topics.
        (*per_shard)[homes_[op.vertex]].push_back(op);
        break;
      }
    }
  }
}

void ShardSet::RebuildRouter(const PropertyGraph& planner) {
  const size_t nv = planner.NumVertices();
  labels_.assign(nv, std::string());
  type_names_.assign(nv, std::string());
  homes_.assign(nv, 0);
  seen_.assign(nv, 0);
  edge_homes_.assign(planner.NumEdgeSlots(), 0);
  for (VertexId gid = 0; gid < nv; ++gid) {
    const std::string& label = planner.VertexLabel(gid);
    labels_[gid] = label;
    const TypeId t = planner.VertexType(gid);
    if (t != kInvalidType) type_names_[gid] = planner.types().GetString(t);
    homes_[gid] = static_cast<uint8_t>(
        ShardOfFoldedLabel(ToLower(label), shards_.size()));
  }
  for (auto& shard : shards_) {
    ReaderMutexLock lock(shard->mutex);
    for (size_t i = 0; i < shard->vertex_gids.size(); ++i) {
      seen_[shard->vertex_gids[i]] |= 1u << shard->index;
    }
    for (size_t i = 0; i < shard->edge_gids.size(); ++i) {
      edge_homes_[shard->edge_gids[i]] = static_cast<uint8_t>(shard->index);
    }
  }
}

// ---------------------------------------------------------------------------
// Op application

void ShardSet::ApplyOps(Shard* shard, const std::vector<KgOp>& ops) {
  PropertyGraph& g = shard->graph;
  for (const KgOp& op : ops) {
    switch (op.kind) {
      case KgOp::Kind::kDefineVertex: {
        auto it = shard->gid_to_local.find(op.vertex);
        if (it != shard->gid_to_local.end()) break;  // ghost raced a define
        const VertexId local = g.GetOrAddVertex(op.label);
        shard->vertex_gids.PushBack(op.vertex);
        shard->gid_to_local.emplace(op.vertex, local);
        if (!op.type_name.empty()) {
          g.SetVertexType(local, g.types().Intern(op.type_name));
        }
        if (!op.topics.empty()) {
          g.SetVertexTopics(local, op.topics);
        }
        break;
      }
      case KgOp::Kind::kAddEdge: {
        const VertexId ls = shard->gid_to_local.at(op.subject);
        const VertexId lo = shard->gid_to_local.at(op.object);
        EdgeMeta meta;
        meta.confidence = op.confidence;
        meta.timestamp = op.timestamp;
        meta.source = op.source_name.empty()
                          ? kInvalidSource
                          : g.sources().Intern(op.source_name);
        meta.curated = op.curated;
        (void)g.AddEdge(ls, g.predicates().Intern(op.predicate_name), lo,
                        meta);
        shard->edge_gids.PushBack(op.edge);
        break;
      }
      case KgOp::Kind::kSetEdgeConfidence: {
        auto local = FindLocalEdge(shard->edge_gids, op.edge);
        if (local) g.SetEdgeConfidence(*local, op.confidence);
        break;
      }
      case KgOp::Kind::kSetVertexType: {
        auto it = shard->gid_to_local.find(op.vertex);
        if (it != shard->gid_to_local.end() && !op.type_name.empty()) {
          g.SetVertexType(it->second, g.types().Intern(op.type_name));
        }
        break;
      }
      case KgOp::Kind::kSetVertexTopics: {
        auto it = shard->gid_to_local.find(op.vertex);
        if (it != shard->gid_to_local.end()) {
          g.SetVertexTopics(it->second, op.topics);
        }
        break;
      }
    }
  }
}

void ShardSet::PublishView(Shard* shard, uint64_t version) {
  auto view = std::make_shared<ShardView>();
  view->version = version;
  {
    ReaderMutexLock lock(shard->mutex);
    view->graph = shard->graph.Clone();
    view->vertex_gids = shard->vertex_gids;  // O(1) COW share
    view->edge_gids = shard->edge_gids;
  }
  shard->views.Publish(std::move(view));
}

void ShardSet::Bootstrap(const PropertyGraph& planner, uint64_t version) {
  // Rebuild from scratch: Recover() re-bootstraps after replacing the
  // planner state the constructor bootstrapped from.
  for (auto& shard : shards_) {
    WriterMutexLock lock(shard->mutex);
    shard->graph = PropertyGraph();
    shard->vertex_gids = CowVec<VertexId>();
    shard->edge_gids = CowVec<EdgeId>();
    shard->gid_to_local.clear();
  }
  labels_.clear();
  type_names_.clear();
  homes_.clear();
  seen_.clear();
  edge_homes_.clear();

  // Synthesize the op stream that would have built the planner graph:
  // every vertex defined in gid order (with its current type and
  // topics), then every live edge in slot order. Routing this stream
  // yields exactly the shard state incremental capture would have
  // produced, so a bootstrapped N-shard set is indistinguishable from
  // one grown op by op.
  KgOpBatch batch;
  const size_t nv = planner.NumVertices();
  for (VertexId gid = 0; gid < nv; ++gid) {
    KgOp op;
    op.kind = KgOp::Kind::kDefineVertex;
    op.vertex = gid;
    op.label = planner.VertexLabel(gid);
    const TypeId t = planner.VertexType(gid);
    if (t != kInvalidType) op.type_name = planner.types().GetString(t);
    op.topics = planner.VertexTopics(gid);
    batch.ops.push_back(std::move(op));
  }
  const size_t ne = planner.NumEdgeSlots();
  for (EdgeId e = 0; e < ne; ++e) {
    const EdgeRecord& rec = planner.Edge(e);
    if (!rec.alive) continue;
    KgOp op;
    op.kind = KgOp::Kind::kAddEdge;
    op.edge = e;
    op.subject = rec.subject;
    op.object = rec.object;
    op.predicate_name = planner.predicates().GetString(rec.predicate);
    if (rec.meta.source != kInvalidSource) {
      op.source_name = planner.sources().GetString(rec.meta.source);
    }
    op.confidence = rec.meta.confidence;
    op.timestamp = rec.meta.timestamp;
    op.curated = rec.meta.curated;
    batch.ops.push_back(std::move(op));
  }

  std::vector<std::vector<KgOp>> per_shard(shards_.size());
  RouteBatch(batch, &per_shard);
  for (auto& shard : shards_) {
    {
      WriterMutexLock lock(shard->mutex);
      ApplyOps(shard.get(), per_shard[shard->index]);
    }
    PublishView(shard.get(), version);
  }
}

void ShardSet::ApplySynchronously(std::vector<KgOpBatch> batches,
                                  uint64_t version) {
  std::vector<std::vector<KgOp>> per_shard(shards_.size());
  for (const KgOpBatch& batch : batches) RouteBatch(batch, &per_shard);
  for (auto& shard : shards_) {
    {
      WriterMutexLock lock(shard->mutex);
      ApplyOps(shard.get(), per_shard[shard->index]);
    }
    PublishView(shard.get(), version);
  }
}

// ---------------------------------------------------------------------------
// Commit lanes

void ShardSet::Start() {
  // Idempotent: the ctor path starts lanes eagerly and a later
  // StartDurable (Recover) calls through here again.
  if (started_) return;
  started_ = true;
  for (auto& shard : shards_) {
    shard->lane = std::thread(&ShardSet::LaneMain, this, shard.get());
  }
}

void ShardSet::Commit(std::vector<KgOpBatch> batches, uint64_t version,
                      uint64_t seq) {
  std::vector<std::vector<KgOp>> per_shard(shards_.size());
  for (const KgOpBatch& batch : batches) RouteBatch(batch, &per_shard);
  const size_t home_lane = seq == 0 ? 0 : seq % shards_.size();
  for (auto& shard : shards_) {
    LaneItem item;
    item.version = version;
    item.ops = std::move(per_shard[shard->index]);
    const bool fsync_duty = seq != 0 && shard->index == home_lane;
    if (fsync_duty) item.fsync_seq = seq;
    const bool has_work = fsync_duty || !item.ops.empty();
    {
      MutexLock lock(shard->queue_mutex);
      shard->queue.push_back(std::move(item));
    }
    // Wake only lanes with actual work. A version-only item (no ops,
    // no fsync duty) coalesces in the queue until the lane's next real
    // wake-up or Drain(): the shard's data is already current — only
    // its view-version label lags — so queries stay coherent, and we
    // skip N-1 thread wake-ups per commit.
    if (has_work) shard->queue_cv.notify_all();
  }
  ++batches_since_checkpoint_;
}

void ShardSet::LaneMain(Shard* shard) {
  for (;;) {
    std::vector<LaneItem> items;
    {
      UniqueLock lock(shard->queue_mutex);
      while (shard->queue.empty() && !shard->stop) {
        shard->queue_cv.wait(lock.std_lock());
      }
      if (shard->queue.empty() && shard->stop) return;
      items.swap(shard->queue);
      shard->busy = true;
    }

    // Apply the whole drained group under one writer section and
    // publish a single coalesced view at the newest version.
    uint64_t max_version = 0;
    std::vector<uint64_t> fsync_seqs;
    {
      WriterMutexLock lock(shard->mutex);
      for (LaneItem& item : items) {
        ApplyOps(shard, item.ops);
        max_version = std::max(max_version, item.version);
        if (item.fsync_seq != 0) fsync_seqs.push_back(item.fsync_seq);
      }
    }
    PublishView(shard, max_version);

    // Group commit: one fsync covers every WAL append drained in this
    // round. Under kAlways the fsync gates the durable ack; under
    // kInterval it batches further; under kNever the page cache rules.
    if (durable_ && !fsync_seqs.empty()) {
      Status sync_status;
      bool synced = false;
      switch (durability_.fsync_policy) {
        case FsyncPolicy::kAlways: {
          sync_status = FsyncShardWal(shard);
          synced = true;
          break;
        }
        case FsyncPolicy::kInterval: {
          size_t pending;
          {
            MutexLock lock(shard->queue_mutex);
            shard->appends_since_sync += fsync_seqs.size();
            pending = shard->appends_since_sync;
          }
          if (pending >= durability_.fsync_interval_records) {
            sync_status = FsyncShardWal(shard);
            MutexLock lock(shard->queue_mutex);
            shard->appends_since_sync = 0;
          }
          break;
        }
        case FsyncPolicy::kNever:
          break;
      }
      if (durability_.fsync_policy == FsyncPolicy::kAlways ||
          !sync_status.ok()) {
        MutexLock lock(ledger_mutex_);
        if (!sync_status.ok()) {
          // Sticky: one failed fsync poisons every later durable ack.
          if (ledger_error_.ok()) ledger_error_ = sync_status;
          for (auto& s : shards_) s->durable_cv.notify_all();
        } else if (synced) {
          const uint64_t old_upto = durable_upto_;
          for (uint64_t s : fsync_seqs) durable_done_.insert(s);
          while (durable_done_.count(durable_upto_ + 1) != 0) {
            durable_done_.erase(durable_upto_ + 1);
            ++durable_upto_;
          }
          // Wake only the writers this advance satisfied: seqs in
          // (old_upto, durable_upto_] wait on their home shards' cvs,
          // which are the next min(advanced, N) lanes after old_upto.
          const uint64_t advanced = durable_upto_ - old_upto;
          const uint64_t lanes =
              std::min<uint64_t>(advanced, shards_.size());
          for (uint64_t i = 1; i <= lanes; ++i) {
            shards_[(old_upto + i) % shards_.size()]->durable_cv
                .notify_all();
          }
        }
      }
    }

    {
      MutexLock lock(shard->queue_mutex);
      shard->busy = false;
    }
    shard->queue_cv.notify_all();
  }
}

void ShardSet::Drain() {
  for (auto& shard : shards_) {
    UniqueLock lock(shard->queue_mutex);
    // Commit() leaves version-only items queued without a wake-up;
    // flush them so every shard's view version converges.
    if (!shard->queue.empty()) shard->queue_cv.notify_all();
    while (!shard->queue.empty() || shard->busy) {
      shard->queue_cv.wait(lock.std_lock());
    }
  }
}

std::vector<std::shared_ptr<const ShardView>> ShardSet::CurrentViews()
    const {
  std::vector<std::shared_ptr<const ShardView>> views;
  views.reserve(shards_.size());
  for (const auto& shard : shards_) views.push_back(shard->views.Current());
  return views;
}

std::vector<uint64_t> ShardSet::CompositeVersion() const {
  std::vector<uint64_t> versions;
  versions.reserve(shards_.size());
  for (const auto& shard : shards_) {
    auto view = shard->views.Current();
    versions.push_back(view == nullptr ? 0 : view->version);
  }
  return versions;
}

// ---------------------------------------------------------------------------
// Durability

Status ShardSet::StartDurable(const std::string& dir,
                              const DurabilityOptions& opts,
                              uint64_t last_seq) {
  durability_ = opts;
  base_dir_ = dir;
  durable_ = true;
  last_seq_ = last_seq;
  {
    MutexLock lock(ledger_mutex_);
    durable_upto_ = last_seq;
  }
  NOUS_RETURN_IF_ERROR(EnsureDirectory(dir));
  NOUS_RETURN_IF_ERROR(EnsureDirectory(dir + "/wal"));
  // Shard WALs open with kNever: the ingest thread appends without
  // syncing and each lane group-commits the fsync off the critical
  // path (through its own fd, see FsyncShardWal).
  WalOptions wal_opts;
  wal_opts.fsync_policy = FsyncPolicy::kNever;
  for (auto& shard : shards_) {
    const std::string shard_dir = ShardDir(dir, shard->index);
    NOUS_RETURN_IF_ERROR(EnsureDirectory(shard_dir));
    shard->wal_path = shard_dir + "/wal.log";
    if (!shard->wal.is_open()) {
      NOUS_RETURN_IF_ERROR(shard->wal.Open(shard->wal_path, wal_opts));
    }
  }
  Start();
  return Status::Ok();
}

Status ShardSet::AppendWal(uint64_t seq, std::string_view payload) {
  Shard* home = shards_[seq % shards_.size()].get();
  NOUS_RETURN_IF_ERROR(home->wal.Append(seq, payload));
  last_seq_ = seq;
  return Status::Ok();
}

Status ShardSet::FsyncShardWal(Shard* shard) {
  if (auto fault = FaultInjector::Global().Hit("wal_fsync")) {
    if (fault->kind == FaultKind::kFail) {
      return Status::Internal("fault injected: wal_fsync fail");
    }
    if (fault->kind == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(fault->arg));
    }
  }
  // A fresh fd per flush: the append fd inside WalWriter belongs to
  // the ingest thread, and checkpointing swaps the file under us — an
  // open-by-path fsync is immune to both.
  const int fd = ::open(shard->wal_path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Internal("open for fsync failed: " + shard->wal_path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Internal("fsync failed: " + shard->wal_path);
  }
  return Status::Ok();
}

Status ShardSet::WaitDurable(uint64_t seq) {
  if (!durable_ || durability_.fsync_policy != FsyncPolicy::kAlways) {
    return Status::Ok();
  }
  Shard* home = shards_[seq % shards_.size()].get();
  UniqueLock lock(ledger_mutex_);
  while (durable_upto_ < seq && ledger_error_.ok()) {
    home->durable_cv.wait(lock.std_lock());
  }
  if (durable_upto_ >= seq) return Status::Ok();
  return ledger_error_;
}

bool ShardSet::ShouldCheckpoint() const {
  return durable_ && durability_.checkpoint_interval_batches > 0 &&
         batches_since_checkpoint_ >= durability_.checkpoint_interval_batches;
}

Status ShardSet::WriteCheckpoint(const std::string& planner_state,
                                 uint64_t kg_version) {
  Drain();

  // 1. Per-shard images. Each carries the composite version so the
  //    fast recovery path can prove the set is coherent.
  for (auto& shard : shards_) {
    BinaryWriter w;
    w.U64(kg_version);
    {
      ReaderMutexLock lock(shard->mutex);
      shard->graph.SaveBinary(&w);
      w.U64(shard->vertex_gids.size());
      for (size_t i = 0; i < shard->vertex_gids.size(); ++i) {
        w.U32(shard->vertex_gids[i]);
      }
      w.U64(shard->edge_gids.size());
      for (size_t i = 0; i < shard->edge_gids.size(); ++i) {
        w.U32(shard->edge_gids[i]);
      }
    }
    CheckpointData data;
    data.last_applied_seq = last_seq_;
    data.state = w.Take();
    NOUS_RETURN_IF_ERROR(WriteCheckpointFile(
        ShardDir(base_dir_, shard->index) + "/checkpoint.nous", data));
  }

  // 2. The planner checkpoint: the recovery source of truth. Crash
  //    before this lands -> old checkpoint + old WALs still replay.
  CheckpointData planner;
  planner.last_applied_seq = last_seq_;
  planner.state = planner_state;
  NOUS_RETURN_IF_ERROR(
      WriteCheckpointFile(PlannerCheckpointPath(base_dir_), planner));

  // 3. The manifest commits the shard fast path: only when it matches
  //    the planner checkpoint's seq (and every shard image does too)
  //    may recovery skip the Bootstrap rebuild.
  BinaryWriter m;
  m.U64(shards_.size());
  m.U64(kg_version);
  CheckpointData manifest;
  manifest.last_applied_seq = last_seq_;
  manifest.state = m.Take();
  NOUS_RETURN_IF_ERROR(
      WriteCheckpointFile(ManifestPath(base_dir_), manifest));

  // 4. Everything logged so far is covered; reset the shard WALs.
  WalOptions wal_opts;
  wal_opts.fsync_policy = FsyncPolicy::kNever;
  for (auto& shard : shards_) {
    NOUS_RETURN_IF_ERROR(shard->wal.Close());
    if (FileExists(shard->wal_path)) {
      NOUS_RETURN_IF_ERROR(RemoveFile(shard->wal_path));
    }
    NOUS_RETURN_IF_ERROR(shard->wal.Open(shard->wal_path, wal_opts));
    MutexLock lock(shard->queue_mutex);
    shard->appends_since_sync = 0;
  }
  batches_since_checkpoint_ = 0;
  return Status::Ok();
}

Result<ShardRecoveryResult> ShardSet::RecoverDurable(
    const std::string& dir) {
  base_dir_ = dir;
  ShardRecoveryResult result;

  // Drop whatever the constructor bootstrapped from the curated KB:
  // the checkpoint (or replay from empty) supersedes it, and the
  // sidecar loads below append rather than overwrite.
  for (auto& shard : shards_) {
    WriterMutexLock lock(shard->mutex);
    shard->graph = PropertyGraph();
    shard->vertex_gids = CowVec<VertexId>();
    shard->edge_gids = CowVec<EdgeId>();
    shard->gid_to_local.clear();
  }

  // Planner checkpoint: corrupt is an error (stale-but-intact beats
  // silently wrong); absent just means replay-from-scratch.
  Result<CheckpointData> planner =
      ReadCheckpointFile(PlannerCheckpointPath(dir));
  if (planner.ok()) {
    result.restored_checkpoint = true;
    result.checkpoint_seq = planner->last_applied_seq;
    result.planner_state = std::move(planner->state);
  } else if (planner.status().code() != StatusCode::kNotFound) {
    return planner.status();
  }

  // Shard fast path: manifest + every per-shard image must agree with
  // the planner checkpoint on seq, shard count, and version. Any
  // mismatch (resharded directory, torn checkpoint sweep) falls back
  // to Bootstrap from the planner graph — correct, just slower.
  bool fast_path = false;
  uint64_t manifest_version = 0;
  Result<CheckpointData> manifest = ReadCheckpointFile(ManifestPath(dir));
  if (result.restored_checkpoint && manifest.ok() &&
      manifest->last_applied_seq == result.checkpoint_seq) {
    BinaryReader r(manifest->state);
    uint64_t shard_count = 0;
    if (r.U64(&shard_count).ok() && r.U64(&manifest_version).ok() &&
        shard_count == shards_.size()) {
      fast_path = true;
    }
  }
  if (fast_path) {
    for (auto& shard : shards_) {
      Result<CheckpointData> image = ReadCheckpointFile(
          ShardDir(dir, shard->index) + "/checkpoint.nous");
      if (!image.ok() ||
          image->last_applied_seq != result.checkpoint_seq) {
        fast_path = false;
        break;
      }
      BinaryReader r(image->state);
      uint64_t version = 0;
      if (!r.U64(&version).ok() || version != manifest_version) {
        fast_path = false;
        break;
      }
      bool loaded = false;
      {
        // The writer lock must drop before PublishView, which takes
        // the same shared mutex as a reader (self-deadlock otherwise).
        WriterMutexLock lock(shard->mutex);
        loaded = shard->graph.LoadBinary(&r).ok();
        uint64_t count = 0;
        Status st = loaded ? r.Count(&count, sizeof(uint32_t))
                           : Status::DataLoss("graph image");
        for (uint64_t i = 0; st.ok() && i < count; ++i) {
          uint32_t gid = 0;
          st = r.U32(&gid);
          if (st.ok()) {
            shard->vertex_gids.PushBack(gid);
            shard->gid_to_local.emplace(gid, static_cast<VertexId>(i));
          }
        }
        if (st.ok()) st = r.Count(&count, sizeof(uint32_t));
        for (uint64_t i = 0; st.ok() && i < count; ++i) {
          uint32_t gid = 0;
          st = r.U32(&gid);
          if (st.ok()) shard->edge_gids.PushBack(gid);
        }
        loaded = st.ok();
      }
      if (!loaded) {
        fast_path = false;
        break;
      }
      PublishView(shard.get(), version);
    }
  }
  if (!fast_path) {
    // Wipe any partially loaded shard; the caller Bootstraps instead.
    for (auto& shard : shards_) {
      WriterMutexLock lock(shard->mutex);
      shard->graph = PropertyGraph();
      shard->vertex_gids = CowVec<VertexId>();
      shard->edge_gids = CowVec<EdgeId>();
      shard->gid_to_local.clear();
    }
  }
  shards_restored_ = fast_path;

  // Scan every shard WAL, truncate torn tails, and merge the records
  // into one contiguous seq run. A record past a seq gap sits after a
  // batch that was never fsynced on its own shard — under the ledger
  // protocol it was never acknowledged either, so dropping it is the
  // same contract as dropping a torn tail.
  std::vector<WalRecord> records;
  for (auto& shard : shards_) {
    const std::string path = ShardDir(dir, shard->index) + "/wal.log";
    NOUS_ASSIGN_OR_RETURN(WalReadResult read, WalReader::ReadAll(path));
    result.dropped_wal_records += read.dropped_records;
    result.dropped_wal_bytes += read.dropped_bytes;
    if (FileExists(path) && read.dropped_bytes > 0) {
      NOUS_RETURN_IF_ERROR(TruncateFile(path, read.valid_bytes));
    }
    for (WalRecord& rec : read.records) {
      if (rec.seq > result.checkpoint_seq) {
        records.push_back(std::move(rec));
      }
    }
  }
  std::sort(records.begin(), records.end(),
            [](const WalRecord& a, const WalRecord& b) {
              return a.seq < b.seq;
            });
  uint64_t expected = result.checkpoint_seq + 1;
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].seq != expected) {
      for (size_t j = i; j < records.size(); ++j) {
        ++result.dropped_wal_records;
        result.dropped_wal_bytes += records[j].payload.size();
      }
      records.resize(i);
      break;
    }
    ++expected;
  }
  result.replay = std::move(records);
  return result;
}

}  // namespace nous
