#ifndef NOUS_CORE_PIPELINE_STATS_H_
#define NOUS_CORE_PIPELINE_STATS_H_

#include <cstddef>
#include <string>

namespace nous {

/// Counters for every stage, reported by bench_pipeline (E8). Lives in
/// its own header (not pipeline.h) because published KG snapshots
/// carry a copy (core/snapshot.h) and the pipeline owns the store —
/// including pipeline.h from snapshot.h would be circular.
struct PipelineStats {
  size_t documents = 0;
  size_t extractions = 0;
  size_t accepted_triples = 0;
  size_t deduped_triples = 0;
  size_t dropped_low_confidence = 0;
  size_t dropped_unmapped = 0;
  size_t mapped_triples = 0;
  size_t unmapped_kept = 0;
  size_t linked_to_existing = 0;
  size_t new_entities = 0;
  size_t ds_alignments = 0;
  size_t retractions = 0;
  double extract_seconds = 0;
  double link_seconds = 0;
  double map_seconds = 0;
  double score_seconds = 0;
  double mine_seconds = 0;

  std::string ToString() const;
};

}  // namespace nous

#endif  // NOUS_CORE_PIPELINE_STATS_H_
