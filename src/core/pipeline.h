#ifndef NOUS_CORE_PIPELINE_H_
#define NOUS_CORE_PIPELINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/hash.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/kg_ops.h"
#include "core/pipeline_stats.h"
#include "core/snapshot.h"
#include "corpus/article_generator.h"
#include "embed/bpr.h"
#include "graph/property_graph.h"
#include "graph/temporal_window.h"
#include "kb/curated_kb.h"
#include "core/source_trust.h"
#include "linker/entity_linker.h"
#include "mapping/distant_supervision.h"
#include "mapping/predicate_mapper.h"
#include "mining/streaming_miner.h"
#include "text/lexicon.h"
#include "text/ner.h"
#include "text/srl.h"
#include "topic/doc_term.h"

namespace nous {

/// End-to-end pipeline configuration (Figure 1's components).
struct PipelineConfig {
  OpenIeConfig extraction;
  LinkerConfig linker;
  MapperConfig mapper;
  BprConfig bpr;
  MinerConfig miner;
  LdaConfig lda;
  /// Sliding-window size (edges) for the streaming miner. The fused KG
  /// itself never expires facts.
  size_t miner_window_edges = 4096;
  bool enable_mining = true;
  bool enable_link_prediction = true;
  /// Documents between incremental BPR refreshes (0 = only at
  /// Finalize).
  size_t bpr_refresh_interval = 100;
  size_t bpr_refresh_epochs = 2;
  /// Weight of the BPR prior when Finalize() rescores extracted edges
  /// (confidence = (1-w)*stored + w*prior). Keep modest: on small
  /// noisy KGs the prior is weak and large weights wash out the
  /// extraction signal.
  double bpr_rescore_weight = 0.25;
  /// Extracted triples whose blended confidence falls below this are
  /// rejected ("simply adding noisy facts ... will destroy its
  /// purpose", §3.4).
  double min_accept_confidence = 0.05;
  /// Keep triples whose relation maps to no ontology predicate, under
  /// a "raw:<phrase>" predicate (else drop them).
  bool keep_unmapped = true;
  /// Evidence added per distant-supervision alignment with a curated
  /// fact; two alignments clear the mapper's default evidence
  /// threshold, one does not.
  double ds_alignment_weight = 0.4;
  /// Learn predicate-phrase evidence from curated-fact alignments
  /// (ablation switch; seeds stay active either way).
  bool enable_distant_supervision = true;
  /// Track per-source corroboration rates and fold source trust into
  /// triple confidence (§3.4's "source level trust").
  bool enable_source_trust = true;
  /// Treat negated extractions ("DJI never acquired X") as retraction
  /// evidence: an existing matching edge loses confidence; no new edge
  /// is added. Forces the extractor to keep negated tuples.
  bool negation_retracts = true;
  /// Confidence multiplier applied to a retracted edge per negation.
  double retraction_factor = 0.5;
  /// Worker threads for batch ingest extraction and the sharded BPR
  /// refresh (0 = hardware_concurrency). The fused KG is identical for
  /// every value: extraction is pure per-document work and fusion
  /// commits in arrival order ("extract in parallel, fuse in order"),
  /// and BPR runs block-deterministic SGD (see BprConfig::sgd_block).
  size_t num_threads = 0;
  /// Block size forced onto the BPR trainer when the caller left
  /// BprConfig::sgd_block at 0; keeps pipeline results independent of
  /// num_threads.
  size_t bpr_sgd_block = 256;
  /// Publish an immutable KgSnapshot after every mutating operation
  /// (ingest call, batch, finalize, state load) so queries serve
  /// lock-free (DESIGN.md §5.11). Off = the pre-snapshot behavior:
  /// snapshot() stays null and Nous falls back to reader-locked
  /// serving (also the benchmark baseline mode).
  bool publish_snapshots = true;
};

/// The NOUS knowledge-graph construction pipeline (§3): curated-KB
/// bootstrap, then per-document extract -> link -> map -> score ->
/// update. The fused KG accretes; the streaming miner watches a
/// sliding window fed with the same extracted stream plus the curated
/// base (mining "both structures", §3.5).
///
/// Threading model (DESIGN.md "Threading model"): the pure extraction
/// stage fans out across a worker pool (IngestBatch); everything that
/// mutates shared state — linking, mapping, scoring, KG/miner-window
/// updates, BPR refresh — commits sequentially in arrival order under
/// the exclusive side of kg_mutex(), so the fused graph is
/// bit-identical to serial ingest. Readers (query serving, stats) take
/// the shared side.
class KgPipeline {
 public:
  /// Copies the curated KB's contents into the KG. `kb` must outlive
  /// the pipeline (it seeds the NER gazetteer and DS alignment index).
  KgPipeline(const CuratedKb* kb, PipelineConfig config = {});

  KgPipeline(const KgPipeline&) = delete;
  KgPipeline& operator=(const KgPipeline&) = delete;

  /// Ingests one article: extraction, joint linking, predicate
  /// mapping, confidence scoring, KG + miner-window update, distant
  /// supervision. Takes the write lock for the post-extraction stages.
  void Ingest(const Article& article) EXCLUDES(kg_mutex_);

  /// Ingests a batch: extraction runs across the pool (pure,
  /// per-document), then link -> map -> score -> update commits
  /// sequentially in array order under one write-lock acquisition.
  /// Equivalent to calling Ingest() on each article in order.
  void IngestBatch(const Article* articles, size_t count)
      EXCLUDES(kg_mutex_);
  void IngestBatch(const std::vector<Article>& articles)
      EXCLUDES(kg_mutex_) {
    IngestBatch(articles.data(), articles.size());
  }

  /// Convenience for ad-hoc text.
  void IngestText(const std::string& text, const Date& date,
                  const std::string& source) EXCLUDES(kg_mutex_);

  /// Draws the next "adhoc_N" article id (what IngestText assigns).
  /// Exposed so durable callers can build the Article — and WAL-log it
  /// under its final id — before handing it to IngestBatch.
  std::string ReserveAdhocId();

  /// Fits LDA topics over the fused KG and runs a final BPR refresh.
  /// Call once after the stream (or periodically).
  void Finalize() EXCLUDES(kg_mutex_);

  /// Serializes every piece of mutable state that influences future
  /// ingest — fused KG (bit-exact: ids, edge slots, adjacency order),
  /// linker alias index, mapper evidence, BPR parameters + RNG state,
  /// source-trust counts, accepted-triple list, refresh cadence,
  /// ad-hoc id counter, stats, and the miner's current window triples.
  /// Takes the shared lock. The payload feeds the durability
  /// checkpointer (DESIGN.md §5.10).
  std::string SaveState() const EXCLUDES(kg_mutex_);

  /// Restores a SaveState payload. Must be called on a freshly
  /// constructed pipeline with the same CuratedKb and PipelineConfig
  /// that produced the payload (the curated bootstrap is re-derived,
  /// then overwritten by the exact saved state; the miner window is
  /// rebuilt semantically by replaying the saved window triples).
  /// After a successful load, ingesting the same articles produces a
  /// fused KG bit-identical to the uncheckpointed run.
  Status LoadState(std::string_view payload) EXCLUDES(kg_mutex_);

  /// Raises the ad-hoc article-id counter to at least `value` (used
  /// after WAL replay so future IngestText ids cannot collide with
  /// replayed "adhoc_N" ids).
  void EnsureAdhocCounterAtLeast(size_t value);

  /// Reader/writer lock over the fused KG, miner state, and models.
  /// Ingest/Finalize acquire it exclusively; concurrent readers
  /// (query execution, stats, serialization) must hold a
  /// ReaderMutexLock while touching graph()/miner()/stats().
  /// RETURN_CAPABILITY makes `pipeline.kg_mutex()` and the member
  /// `kg_mutex_` the same capability to the thread-safety analysis, so
  /// locks taken through the accessor satisfy REQUIRES(kg_mutex_)
  /// declarations (and vice versa).
  AnnotatedSharedMutex& kg_mutex() const RETURN_CAPABILITY(kg_mutex_) {
    return kg_mutex_;
  }

  /// Worker pool shared by extraction and the BPR refresh; null when
  /// the pipeline resolved to one thread. The pool itself is
  /// internally synchronized; the pointer is immutable after
  /// construction.
  ThreadPool* pool() { return pool_.get(); }

  PropertyGraph& graph() REQUIRES(kg_mutex_) { return graph_; }
  const PropertyGraph& graph() const REQUIRES_SHARED(kg_mutex_) {
    return graph_;
  }
  StreamingMiner* miner() REQUIRES(kg_mutex_) { return miner_.get(); }
  const StreamingMiner* miner() const REQUIRES_SHARED(kg_mutex_) {
    return miner_.get();
  }
  /// The graph the miner watches; its dictionaries resolve pattern
  /// ids (distinct from the fused KG's dictionaries).
  const PropertyGraph* miner_graph() const REQUIRES_SHARED(kg_mutex_) {
    return &window_graph_;
  }
  EntityLinker& linker() REQUIRES(kg_mutex_) { return linker_; }
  PredicateMapper& mapper() REQUIRES(kg_mutex_) { return mapper_; }
  BprModel& bpr() REQUIRES(kg_mutex_) { return bpr_; }
  const SourceTrustTracker& source_trust() const
      REQUIRES_SHARED(kg_mutex_) {
    return trust_;
  }
  const LdaModel* lda() const REQUIRES_SHARED(kg_mutex_) {
    return lda_.get();
  }
  const PipelineStats& stats() const REQUIRES_SHARED(kg_mutex_) {
    return stats_;
  }
  const PipelineConfig& config() const { return config_; }
  const Lexicon& lexicon() const { return lexicon_; }
  const Ner& ner() const { return ner_; }

  /// Monotonic KG version: starts at 1 after the curated bootstrap and
  /// increments on every mutating operation (Ingest call, IngestBatch
  /// call, Finalize). Restored exactly by LoadState, and WAL replay
  /// re-applies the same operations, so a recovered pipeline reports
  /// the same version as the uncrashed run. Keys the query cache.
  uint64_t kg_version() const REQUIRES_SHARED(kg_mutex_) {
    return kg_version_;
  }

  /// Latest published snapshot; null until the first Publish (i.e.
  /// always null when config().publish_snapshots is false). The
  /// returned snapshot is immutable and safe to read with no lock.
  /// The snapshot store itself, for publish-count telemetry
  /// (/api/stats, ResourceSampler probes).
  const SnapshotStore& snapshot_store() const { return snapshots_; }

  std::shared_ptr<const KgSnapshot> snapshot() const {
    return snapshots_.Current();
  }

  /// Clones the KG under the shared lock and installs the result as
  /// the current snapshot. Called automatically after every mutating
  /// operation when config().publish_snapshots is on; no-op otherwise.
  void PublishSnapshot() EXCLUDES(kg_mutex_);

  /// Sharded mode (DESIGN.md §5.16): from now on, every committed
  /// mutating operation also appends a KgOpBatch describing the exact
  /// fused-KG mutations it performed, for replay on shard lanes.
  void EnableOpCapture() EXCLUDES(kg_mutex_);

  /// Drains the captured batches (FIFO). The ShardSet routes each
  /// batch to per-shard lanes; batches must be taken after every
  /// mutating call so the queue stays bounded.
  std::vector<KgOpBatch> TakeCapturedOps() EXCLUDES(kg_mutex_);

 private:
  /// Result of the pure, thread-safe extraction stage for one article.
  struct ExtractedDoc {
    std::vector<SrlFrame> frames;
    size_t num_sentences = 0;
    /// Document content-word bag (built only when frames is
    /// non-empty; linking is skipped otherwise).
    TermBag doc_bag;
    double extract_seconds = 0;
  };

  void LoadCuratedKb() REQUIRES(kg_mutex_);
  /// Seeds the miner window graph with the curated facts (direct
  /// insertion, never expired). Called from the curated bootstrap and
  /// again by LoadStateLocked after it resets the window machinery.
  void BootstrapMinerWindowLocked() REQUIRES(kg_mutex_);
  /// Finalize body (BPR refresh + rescore + LDA), under the writer
  /// lock held by Finalize().
  void FinalizeLocked() REQUIRES(kg_mutex_);
  std::string VertexTypeName(VertexId v) const REQUIRES_SHARED(kg_mutex_);
  void RefreshBpr(size_t epochs) REQUIRES(kg_mutex_);
  /// Stage 1 (extraction + document bag): reads only immutable models
  /// (lexicon, NER, SRL), safe to run from pool threads with no lock.
  ExtractedDoc ExtractDocument(const Article& article) const;
  /// Stages 2-7 (link -> map -> score -> KG/miner update -> periodic
  /// BPR refresh); caller must hold kg_mutex_ exclusively.
  void CommitDocument(const Article& article, ExtractedDoc&& doc)
      REQUIRES(kg_mutex_);
  /// LoadState body, under the writer lock held by LoadState().
  Status LoadStateLocked(std::string_view payload) REQUIRES(kg_mutex_);

  /// Op capture (sharded mode). Begin records vertex/edge watermarks;
  /// End diffs the graph against them and appends one KgOpBatch:
  /// [new-vertex defines, asc][confidence updates to pre-batch edges,
  /// in call order][new edges with final meta, asc][late typings of
  /// previously untyped vertices]. The groups commute with each other,
  /// so replaying them in this canonical order reproduces the exact
  /// interleaved mutation sequence's final state *and* id assignment.
  void BeginOpCaptureLocked() REQUIRES(kg_mutex_);
  void EndOpCaptureLocked(bool finalize) REQUIRES(kg_mutex_);
  /// SetEdgeConfidence that also records (edge, value) for op capture;
  /// all pipeline confidence rewrites must go through this.
  void SetEdgeConfidenceTracked(EdgeId e, double confidence)
      REQUIRES(kg_mutex_);

  /// Immutable after construction.
  PipelineConfig config_;
  const CuratedKb* kb_;  // not owned; immutable after construction

  mutable AnnotatedSharedMutex kg_mutex_;
  /// Internally synchronized; the pointer never changes after
  /// construction.
  std::unique_ptr<ThreadPool> pool_;  // lint: unguarded(see above)

  PropertyGraph graph_ GUARDED_BY(kg_mutex_);  // the fused KG
  /// Mirror graph holding the miner's sliding window (curated base +
  /// recent stream).
  PropertyGraph window_graph_ GUARDED_BY(kg_mutex_);
  std::unique_ptr<TemporalWindow> window_ GUARDED_BY(kg_mutex_);
  std::unique_ptr<StreamingMiner> miner_ GUARDED_BY(kg_mutex_);

  /// Read-only extraction models: initialized in the constructor, then
  /// only read (including from pool threads during batch extraction).
  Lexicon lexicon_;             // lint: unguarded(immutable after ctor)
  Ner ner_;                     // lint: unguarded(immutable after ctor)
  SrlExtractor srl_;            // lint: unguarded(immutable after ctor)

  EntityLinker linker_ GUARDED_BY(kg_mutex_);
  PredicateMapper mapper_ GUARDED_BY(kg_mutex_);
  DistantSupervisionTrainer ds_trainer_ GUARDED_BY(kg_mutex_);
  BprModel bpr_ GUARDED_BY(kg_mutex_);
  std::unique_ptr<LdaModel> lda_ GUARDED_BY(kg_mutex_);
  SourceTrustTracker trust_ GUARDED_BY(kg_mutex_);

  /// (subject, object) -> curated predicates, for distant supervision.
  std::unordered_map<std::pair<VertexId, VertexId>,
                     std::vector<std::string>, PairHash>
      curated_pairs_ GUARDED_BY(kg_mutex_);
  std::vector<IdTriple> accepted_ids_ GUARDED_BY(kg_mutex_);
  size_t docs_since_refresh_ GUARDED_BY(kg_mutex_) = 0;
  /// See kg_version(); set to 1 by the constructor's curated bootstrap.
  uint64_t kg_version_ GUARDED_BY(kg_mutex_) = 0;
  /// Internally synchronized shared_ptr-swap store (see SnapshotStore).
  SnapshotStore snapshots_;
  /// Render cache for miner patterns, keyed by miner generation;
  /// PublishSnapshot reuses it (a shared_ptr bump) when the miner saw
  /// no window events since the last render. Atomic because publishers
  /// hold only the shared side of kg_mutex_: racing publishers may
  /// overwrite each other, which at worst costs one redundant
  /// re-render on a later publish, never a wrong pattern set (each
  /// stored set is consistent with some published generation).
  std::atomic<std::shared_ptr<const RenderedPatternSet>> rendered_patterns_;
  /// Ids for ad-hoc IngestText articles; atomic so concurrent HTTP
  /// ingest callers get distinct ids without taking the write lock
  /// early.
  std::atomic<size_t> adhoc_counter_{0};
  PipelineStats stats_ GUARDED_BY(kg_mutex_);

  /// ---- Op capture state (sharded mode; see EnableOpCapture). ----
  bool capture_ops_ GUARDED_BY(kg_mutex_) = false;
  std::vector<KgOpBatch> captured_ GUARDED_BY(kg_mutex_);
  /// Confidence rewrites recorded by SetEdgeConfidenceTracked during
  /// the current batch, in call order (cleared by Begin).
  std::vector<std::pair<EdgeId, double>> capture_conf_
      GUARDED_BY(kg_mutex_);
  size_t capture_vertex_watermark_ GUARDED_BY(kg_mutex_) = 0;
  size_t capture_edge_watermark_ GUARDED_BY(kg_mutex_) = 0;
  /// Vertices previously emitted with no type; the linker types a
  /// vertex at most once, so each entry graduates via one
  /// kSetVertexType op the batch it gains a type.
  std::vector<VertexId> capture_untyped_ GUARDED_BY(kg_mutex_);
};

}  // namespace nous

#endif  // NOUS_CORE_PIPELINE_H_
