#ifndef NOUS_CORE_PIPELINE_H_
#define NOUS_CORE_PIPELINE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "corpus/article_generator.h"
#include "embed/bpr.h"
#include "graph/property_graph.h"
#include "graph/temporal_window.h"
#include "kb/curated_kb.h"
#include "core/source_trust.h"
#include "linker/entity_linker.h"
#include "mapping/distant_supervision.h"
#include "mapping/predicate_mapper.h"
#include "mining/streaming_miner.h"
#include "text/lexicon.h"
#include "text/ner.h"
#include "text/srl.h"
#include "topic/doc_term.h"

namespace nous {

/// End-to-end pipeline configuration (Figure 1's components).
struct PipelineConfig {
  OpenIeConfig extraction;
  LinkerConfig linker;
  MapperConfig mapper;
  BprConfig bpr;
  MinerConfig miner;
  LdaConfig lda;
  /// Sliding-window size (edges) for the streaming miner. The fused KG
  /// itself never expires facts.
  size_t miner_window_edges = 4096;
  bool enable_mining = true;
  bool enable_link_prediction = true;
  /// Documents between incremental BPR refreshes (0 = only at
  /// Finalize).
  size_t bpr_refresh_interval = 100;
  size_t bpr_refresh_epochs = 2;
  /// Weight of the BPR prior when Finalize() rescores extracted edges
  /// (confidence = (1-w)*stored + w*prior). Keep modest: on small
  /// noisy KGs the prior is weak and large weights wash out the
  /// extraction signal.
  double bpr_rescore_weight = 0.25;
  /// Extracted triples whose blended confidence falls below this are
  /// rejected ("simply adding noisy facts ... will destroy its
  /// purpose", §3.4).
  double min_accept_confidence = 0.05;
  /// Keep triples whose relation maps to no ontology predicate, under
  /// a "raw:<phrase>" predicate (else drop them).
  bool keep_unmapped = true;
  /// Evidence added per distant-supervision alignment with a curated
  /// fact; two alignments clear the mapper's default evidence
  /// threshold, one does not.
  double ds_alignment_weight = 0.4;
  /// Learn predicate-phrase evidence from curated-fact alignments
  /// (ablation switch; seeds stay active either way).
  bool enable_distant_supervision = true;
  /// Track per-source corroboration rates and fold source trust into
  /// triple confidence (§3.4's "source level trust").
  bool enable_source_trust = true;
  /// Treat negated extractions ("DJI never acquired X") as retraction
  /// evidence: an existing matching edge loses confidence; no new edge
  /// is added. Forces the extractor to keep negated tuples.
  bool negation_retracts = true;
  /// Confidence multiplier applied to a retracted edge per negation.
  double retraction_factor = 0.5;
};

/// Counters for every stage, reported by bench_pipeline (E8).
struct PipelineStats {
  size_t documents = 0;
  size_t extractions = 0;
  size_t accepted_triples = 0;
  size_t deduped_triples = 0;
  size_t dropped_low_confidence = 0;
  size_t dropped_unmapped = 0;
  size_t mapped_triples = 0;
  size_t unmapped_kept = 0;
  size_t linked_to_existing = 0;
  size_t new_entities = 0;
  size_t ds_alignments = 0;
  size_t retractions = 0;
  double extract_seconds = 0;
  double link_seconds = 0;
  double map_seconds = 0;
  double score_seconds = 0;
  double mine_seconds = 0;

  std::string ToString() const;
};

/// The NOUS knowledge-graph construction pipeline (§3): curated-KB
/// bootstrap, then per-document extract -> link -> map -> score ->
/// update. The fused KG accretes; the streaming miner watches a
/// sliding window fed with the same extracted stream plus the curated
/// base (mining "both structures", §3.5).
class KgPipeline {
 public:
  /// Copies the curated KB's contents into the KG. `kb` must outlive
  /// the pipeline (it seeds the NER gazetteer and DS alignment index).
  KgPipeline(const CuratedKb* kb, PipelineConfig config = {});

  KgPipeline(const KgPipeline&) = delete;
  KgPipeline& operator=(const KgPipeline&) = delete;

  /// Ingests one article: extraction, joint linking, predicate
  /// mapping, confidence scoring, KG + miner-window update, distant
  /// supervision.
  void Ingest(const Article& article);

  /// Convenience for ad-hoc text.
  void IngestText(const std::string& text, const Date& date,
                  const std::string& source);

  /// Fits LDA topics over the fused KG and runs a final BPR refresh.
  /// Call once after the stream (or periodically).
  void Finalize();

  PropertyGraph& graph() { return graph_; }
  const PropertyGraph& graph() const { return graph_; }
  StreamingMiner* miner() { return miner_.get(); }
  const StreamingMiner* miner() const { return miner_.get(); }
  /// The graph the miner watches; its dictionaries resolve pattern
  /// ids (distinct from the fused KG's dictionaries).
  const PropertyGraph* miner_graph() const { return &window_graph_; }
  EntityLinker& linker() { return linker_; }
  PredicateMapper& mapper() { return mapper_; }
  BprModel& bpr() { return bpr_; }
  const SourceTrustTracker& source_trust() const { return trust_; }
  const LdaModel* lda() const { return lda_.get(); }
  const PipelineStats& stats() const { return stats_; }
  const PipelineConfig& config() const { return config_; }
  const Lexicon& lexicon() const { return lexicon_; }
  const Ner& ner() const { return ner_; }

 private:
  void LoadCuratedKb();
  std::string VertexTypeName(VertexId v) const;
  void RefreshBpr(size_t epochs);

  PipelineConfig config_;
  const CuratedKb* kb_;  // not owned

  PropertyGraph graph_;  // the fused, ever-growing KG
  /// Mirror graph holding the miner's sliding window (curated base +
  /// recent stream).
  PropertyGraph window_graph_;
  std::unique_ptr<TemporalWindow> window_;
  std::unique_ptr<StreamingMiner> miner_;

  Lexicon lexicon_;
  Ner ner_;
  SrlExtractor srl_;
  EntityLinker linker_;
  PredicateMapper mapper_;
  DistantSupervisionTrainer ds_trainer_;
  BprModel bpr_;
  std::unique_ptr<LdaModel> lda_;
  SourceTrustTracker trust_;

  /// (subject, object) -> curated predicates, for distant supervision.
  std::unordered_map<std::pair<VertexId, VertexId>,
                     std::vector<std::string>, PairHash>
      curated_pairs_;
  std::vector<IdTriple> accepted_ids_;
  size_t docs_since_refresh_ = 0;
  PipelineStats stats_;
};

}  // namespace nous

#endif  // NOUS_CORE_PIPELINE_H_
