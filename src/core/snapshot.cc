#include "core/snapshot.h"

#include <utility>

namespace nous {

void SnapshotStore::Publish(std::shared_ptr<const KgSnapshot> snapshot) {
  if (snapshot == nullptr) return;
  std::shared_ptr<const KgSnapshot> cur =
      current_.load(std::memory_order_acquire);
  // Install unless a racing publisher already holds an equal-or-newer
  // view. compare_exchange reloads `cur` on failure, so each retry
  // re-checks monotonicity against the latest winner.
  while (cur == nullptr || snapshot->version > cur->version) {
    if (current_.compare_exchange_weak(cur, snapshot,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      publishes_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace nous
