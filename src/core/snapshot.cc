#include "core/snapshot.h"

#include <utility>

namespace nous {

KgSnapshot::KgSnapshot(uint64_t version, PropertyGraph graph,
                       std::shared_ptr<const RenderedPatternSet> pattern_set,
                       PipelineStats stats)
    : version_(version),
      graph_(std::move(graph)),
      pattern_set_(std::move(pattern_set)),
      stats_(std::move(stats)) {
  // Chunk byte caches make this O(chunks touched since the last
  // accounting pass); the producer constructs off the pipeline locks.
  approx_graph_bytes_ = graph_.Footprint().total_bytes();
}

const std::vector<RenderedPattern>& KgSnapshot::patterns() const {
  static const std::vector<RenderedPattern> kEmpty;
  return pattern_set_ == nullptr ? kEmpty : pattern_set_->patterns;
}

void SnapshotStore::Publish(std::shared_ptr<const KgSnapshot> snapshot) {
  if (snapshot == nullptr) return;
  std::shared_ptr<const KgSnapshot> cur =
      current_.load(std::memory_order_acquire);
  // Install unless a racing publisher already holds an equal-or-newer
  // view. compare_exchange reloads `cur` on failure, so each retry
  // re-checks monotonicity against the latest winner.
  while (cur == nullptr || snapshot->version() > cur->version()) {
    if (current_.compare_exchange_weak(cur, snapshot,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      publishes_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
}

}  // namespace nous
