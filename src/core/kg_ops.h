// Sharding op vocabulary (DESIGN.md §5.16).
//
// The semantic pipeline stays a single sequential planner: it fuses
// extractions into the authoritative KG and, when op capture is
// enabled, emits the resulting *graph mutations* as a flat op stream.
// A ShardSet partitions that stream by subject-entity home shard and
// replays each partition on an independent commit lane with its own
// mutex, WAL segment, and snapshot store.  Because every shard count
// partitions the same deterministic op stream, the fused KG is
// bit-identical for any N.
//
// Ops reference *planner* ids (VertexId/EdgeId/PredicateId/SourceId of
// the pipeline's fused graph).  Shard lanes keep translation sidecars
// (gid<->local index maps) so a composite read view can present
// planner ids to the query layer unchanged.

#ifndef NOUS_CORE_KG_OPS_H_
#define NOUS_CORE_KG_OPS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/types.h"

namespace nous {

// Hard ceiling on --shards: the ingest router tracks per-vertex
// shard-presence as a uint32_t bitmask.
inline constexpr size_t kMaxShards = 32;

// FNV-1a over the case-folded entity label; stable across platforms
// and runs, so a vertex's home shard is a pure function of its label.
inline size_t ShardOfFoldedLabel(std::string_view folded, size_t num_shards) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : folded) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return num_shards <= 1 ? 0 : static_cast<size_t>(h % num_shards);
}

// One planner-side graph mutation.  Field use by kind:
//   kDefineVertex        vertex, label, type_name (may be empty), topics
//   kAddEdge             edge, subject, predicate_name, object, meta fields
//   kSetEdgeConfidence   edge, confidence
//   kSetVertexType       vertex, type_name
//   kSetVertexTopics     vertex, topics
// String names (not ids) travel for predicates/types/sources so each
// shard graph interns its own dictionaries; the composite view
// translates back to planner ids per snapshot.
struct KgOp {
  enum class Kind : uint8_t {
    kDefineVertex,
    kAddEdge,
    kSetEdgeConfidence,
    kSetVertexType,
    kSetVertexTopics,
  };

  Kind kind = Kind::kDefineVertex;
  VertexId vertex = kInvalidVertex;   // define / set-type / set-topics
  EdgeId edge = kInvalidEdge;        // planner edge slot (global edge id)
  VertexId subject = kInvalidVertex;
  VertexId object = kInvalidVertex;
  std::string label;          // define: entity label (planner spelling)
  std::string type_name;      // define / set-type
  std::string predicate_name; // add-edge
  std::string source_name;    // add-edge ("" = kInvalidSource)
  std::vector<double> topics; // define / set-topics
  double confidence = 0.0;    // add-edge / set-confidence
  Timestamp timestamp = 0;    // add-edge
  bool curated = false;       // add-edge
};

// Ops captured from one committed ingest batch (or Finalize), in
// planner application order.
struct KgOpBatch {
  std::vector<KgOp> ops;
  bool finalize = false;  // true when emitted by Finalize()
};

}  // namespace nous

#endif  // NOUS_CORE_KG_OPS_H_
