#include "core/source_trust.h"

#include <algorithm>

namespace nous {

SourceTrustTracker::SourceTrustTracker(double prior_trust,
                                       double prior_strength)
    : prior_trust_(prior_trust), prior_strength_(prior_strength) {}

void SourceTrustTracker::RecordCorroborated(SourceId source,
                                            double weight) {
  Counts& c = counts_[source];
  c.corroborated += weight;
  c.total += weight;
}

void SourceTrustTracker::RecordUncorroborated(SourceId source,
                                              double weight) {
  counts_[source].total += weight;
}

double SourceTrustTracker::Trust(SourceId source) const {
  auto it = counts_.find(source);
  double corroborated = prior_trust_ * prior_strength_;
  double total = prior_strength_;
  if (it != counts_.end()) {
    corroborated += it->second.corroborated;
    total += it->second.total;
  }
  return corroborated / total;
}

double SourceTrustTracker::GlobalRate() const {
  double corroborated = prior_trust_ * prior_strength_;
  double total = prior_strength_;
  // Canonical (sorted) accumulation order: the map is unordered, and
  // FP addition is not associative, so iterating it directly would tie
  // the result to insertion history — breaking checkpoint/replay
  // bit-equivalence (DESIGN.md §5.10).
  for (SourceId source : KnownSources()) {
    const Counts& c = counts_.at(source);
    corroborated += c.corroborated;
    total += c.total;
  }
  return corroborated / total;
}

double SourceTrustTracker::RelativeTrust(SourceId source) const {
  double global = GlobalRate();
  if (global <= 0) return 1.0;
  double relative = Trust(source) / global;
  return relative > 1.0 ? 1.0 : relative;
}

double SourceTrustTracker::Observations(SourceId source) const {
  auto it = counts_.find(source);
  return it == counts_.end() ? 0 : it->second.total;
}

std::vector<SourceId> SourceTrustTracker::KnownSources() const {
  std::vector<SourceId> sources;
  sources.reserve(counts_.size());
  for (const auto& [source, counts] : counts_) sources.push_back(source);
  std::sort(sources.begin(), sources.end());
  return sources;
}

void SourceTrustTracker::SaveBinary(BinaryWriter* writer) const {
  std::vector<SourceId> sources = KnownSources();
  writer->U64(sources.size());
  for (SourceId source : sources) {
    const Counts& c = counts_.at(source);
    writer->U32(source);
    writer->F64(c.corroborated);
    writer->F64(c.total);
  }
}

Status SourceTrustTracker::LoadBinary(BinaryReader* reader) {
  uint64_t num_sources = 0;
  NOUS_RETURN_IF_ERROR(reader->Count(&num_sources, 4 + 8 + 8));
  counts_.clear();
  counts_.reserve(num_sources);
  for (uint64_t i = 0; i < num_sources; ++i) {
    SourceId source = 0;
    Counts c;
    NOUS_RETURN_IF_ERROR(reader->U32(&source));
    NOUS_RETURN_IF_ERROR(reader->F64(&c.corroborated));
    NOUS_RETURN_IF_ERROR(reader->F64(&c.total));
    counts_.emplace(source, c);
  }
  return Status::Ok();
}

}  // namespace nous
