#include "core/source_trust.h"

namespace nous {

SourceTrustTracker::SourceTrustTracker(double prior_trust,
                                       double prior_strength)
    : prior_trust_(prior_trust), prior_strength_(prior_strength) {}

void SourceTrustTracker::RecordCorroborated(SourceId source,
                                            double weight) {
  Counts& c = counts_[source];
  c.corroborated += weight;
  c.total += weight;
}

void SourceTrustTracker::RecordUncorroborated(SourceId source,
                                              double weight) {
  counts_[source].total += weight;
}

double SourceTrustTracker::Trust(SourceId source) const {
  auto it = counts_.find(source);
  double corroborated = prior_trust_ * prior_strength_;
  double total = prior_strength_;
  if (it != counts_.end()) {
    corroborated += it->second.corroborated;
    total += it->second.total;
  }
  return corroborated / total;
}

double SourceTrustTracker::GlobalRate() const {
  double corroborated = prior_trust_ * prior_strength_;
  double total = prior_strength_;
  for (const auto& [source, c] : counts_) {
    corroborated += c.corroborated;
    total += c.total;
  }
  return corroborated / total;
}

double SourceTrustTracker::RelativeTrust(SourceId source) const {
  double global = GlobalRate();
  if (global <= 0) return 1.0;
  double relative = Trust(source) / global;
  return relative > 1.0 ? 1.0 : relative;
}

double SourceTrustTracker::Observations(SourceId source) const {
  auto it = counts_.find(source);
  return it == counts_.end() ? 0 : it->second.total;
}

std::vector<SourceId> SourceTrustTracker::KnownSources() const {
  std::vector<SourceId> sources;
  sources.reserve(counts_.size());
  for (const auto& [source, counts] : counts_) sources.push_back(source);
  return sources;
}

}  // namespace nous
