#ifndef NOUS_CORE_SOURCE_TRUST_H_
#define NOUS_CORE_SOURCE_TRUST_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "graph/types.h"

namespace nous {

/// Source-level trust (§3.4: "in addition to tracking source level
/// trust, we implemented a Link Prediction approach ..."). Each
/// source's trust is a Beta-smoothed corroboration rate: triples that
/// a second independent source (or the curated KB) also reports count
/// as corroborated; triples that stay single-sourced count against.
/// Trust feeds the pipeline's confidence blend so facts from
/// habitually-uncorroborated feeds score lower.
class SourceTrustTracker {
 public:
  /// `prior_trust` is the trust of a source with no history, encoded
  /// as `prior_strength` pseudo-observations.
  explicit SourceTrustTracker(double prior_trust = 0.7,
                              double prior_strength = 10.0);

  /// Records that `source` reported a triple later corroborated by an
  /// independent reporter.
  void RecordCorroborated(SourceId source, double weight = 1.0);

  /// Records an (as yet) uncorroborated report.
  void RecordUncorroborated(SourceId source, double weight = 1.0);

  /// Beta-smoothed corroboration rate in (0, 1).
  double Trust(SourceId source) const;

  /// Corpus-wide corroboration rate (prior-anchored). In a corpus
  /// where most facts are reported once, this is low for everyone —
  /// which says nothing about any particular source.
  double GlobalRate() const;

  /// Trust relative to the corpus base rate, capped at 1: sources at
  /// or above the average corroboration rate score 1; habitually
  /// below-average sources score proportionally less. This is what the
  /// pipeline folds into confidence, so single-report corpora are not
  /// penalized across the board.
  double RelativeTrust(SourceId source) const;

  /// Observation mass (excluding the prior) for diagnostics.
  double Observations(SourceId source) const;

  std::vector<SourceId> KnownSources() const;

  /// Checkpoint serialization of the per-source counts (priors come
  /// from construction).
  void SaveBinary(BinaryWriter* writer) const;
  Status LoadBinary(BinaryReader* reader);

 private:
  struct Counts {
    double corroborated = 0;
    double total = 0;
  };
  double prior_trust_;
  double prior_strength_;
  std::unordered_map<SourceId, Counts> counts_;
};

}  // namespace nous

#endif  // NOUS_CORE_SOURCE_TRUST_H_
