#ifndef NOUS_SERVER_API_H_
#define NOUS_SERVER_API_H_

#include <atomic>
#include <string>

#include "common/thread_annotations.h"
#include "core/nous.h"
#include "replication/telemetry.h"
#include "server/http_server.h"

namespace nous {

/// JSON + HTML front-end over a Nous instance — the web interface of
/// the paper's Figure 6 ("Web based interface for Trending, Entity and
/// Relationship-based queries"), reduced to its essentials:
///
///   GET  /                      single-page query UI
///   GET  /api/query?q=<text>    parse + execute any Figure-5 query
///   GET  /api/stats             graph + pipeline statistics, including
///                               per-stage latency quantiles
///   GET  /api/metrics           Prometheus text-exposition dump of the
///                               process-wide MetricsRegistry (obs/)
///   GET  /api/trace?limit=N     the N most recent completed spans as
///                               Chrome trace-event JSON (open in
///                               Perfetto / chrome://tracing)
///   GET  /api/healthz           liveness: 200 while the process runs
///   GET  /api/readyz            readiness: 200 while serving, 503
///                               after SetReady(false) (drain)
///   POST /api/ingest?source=s&year=Y&month=M&day=D   body = text
///        (503 when durable logging fails: unlogged = unacknowledged)
///
/// The API serializes Answer structures to JSON (facts with
/// provenance, trending entities, patterns, paths). Every request is
/// counted in nous_http_requests_total{code=...} and timed into
/// nous_http_request_latency_seconds. Handle() mints a root span per
/// request (child spans from the query/ingest machinery parent under
/// it, across pool threads) and stamps its trace id into the
/// X-Nous-Trace-Id response header for correlation with /api/trace
/// and the slow-query log.
///
/// Handle() is thread-safe: read endpoints (query, stats) execute and
/// serialize against one immutable KgSnapshot (DESIGN.md §5.11) and
/// never touch kg_mutex — queries cannot stall ingest commits. With
/// snapshot publishing disabled they fall back to holding the
/// pipeline's shared lock for the read-and-serialize span. Ingest
/// takes the exclusive side internally.
class NousApi {
 public:
  /// `nous` must outlive the API.
  explicit NousApi(Nous* nous);

  /// The HttpServer handler.
  HttpResponse Handle(const HttpRequest& request);

  /// Flips /api/readyz between 200 and 503. Load balancers watch it:
  /// SetReady(false) before HttpServer::Stop() lets traffic move away
  /// while in-flight requests finish (graceful drain).
  void SetReady(bool ready) {
    ready_.store(ready, std::memory_order_release);
  }
  bool ready() const { return ready_.load(std::memory_order_acquire); }

  /// Wires the serving tier to a replication endpoint (leader or
  /// follower). Effects:
  ///  - /api/stats grows a "replication" object (role, lag, counters);
  ///  - every response carries an X-Nous-Kg-Version header (the KG
  ///    version the process would serve), so clients can reason about
  ///    read staleness across the fleet;
  ///  - with max_staleness_versions > 0, /api/readyz also returns 503
  ///    while this replica lags its leader by more than that many KG
  ///    versions (or has not yet heard a leader heartbeat) — the
  ///    bounded-staleness gate load balancers use to drop a stale
  ///    replica from rotation;
  ///  - with read_only, POST /api/ingest is rejected with 403: a
  ///    replica's KG is derived state, writes belong on the leader.
  /// Call once before serving starts; `telemetry` must outlive the API.
  void ConfigureReplication(const ReplicationTelemetry* telemetry,
                            uint64_t max_staleness_versions,
                            bool read_only);

  /// JSON for one executed answer (exposed for tests). `graph` must
  /// be the view the answer was computed against — a snapshot's graph
  /// (no locking needed; it is immutable), or the live graph under a
  /// ReaderMutexLock.
  static std::string AnswerJson(const Answer& answer,
                                const PropertyGraph& graph);

 private:
  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleStats();
  HttpResponse HandleMetrics();
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleTrace(const HttpRequest& request);
  HttpResponse Route(const HttpRequest& request);

  Nous* nous_;
  /// Readiness toggle; atomic so drain can flip it while workers serve.
  std::atomic<bool> ready_{true};  // lint: unguarded(atomic flag)
  /// Replication wiring (ConfigureReplication): set once before the
  /// server starts, read-only afterwards.
  const ReplicationTelemetry* replication_ = nullptr;
  uint64_t max_staleness_versions_ = 0;
  bool read_only_ = false;
};

/// The embedded single-page UI served at "/".
const char* DemoPageHtml();

}  // namespace nous

#endif  // NOUS_SERVER_API_H_
