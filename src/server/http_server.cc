#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/string_util.h"
#include "obs/metrics.h"

namespace nous {

namespace {

/// Why reading a request stopped. Everything except kOk and
/// kDisconnect maps to a specific error status the client can see.
enum class ReadOutcome {
  kOk,
  kDisconnect,      // peer closed / reset before a full request
  kTimeout,         // io_timeout_ms passed with the request incomplete
  kHeaderTooLarge,  // headers exceeded max_header_bytes
  kBodyTooLarge,    // declared or received body exceeded max_body_bytes
};

/// One recv with the "http_recv" fault point in front: kDelay stalls
/// `arg` ms (a deterministic slow-loris client), kFail reports a
/// dropped connection.
ssize_t RecvWithFaults(int fd, char* buffer, size_t size) {
  if (auto fault = FaultInjector::Global().Hit("http_recv")) {
    if (fault->kind == FaultKind::kDelay) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          fault->arg > 0 ? fault->arg : 100));
    } else {
      errno = ECONNRESET;
      return -1;
    }
  }
  return ::recv(fd, buffer, size, 0);
}

/// Reads until the end of headers plus Content-Length body bytes,
/// enforcing the header/body caps.
ReadOutcome ReadRequest(int fd, const HttpServerOptions& options,
                        std::string* raw) {
  raw->clear();
  char buffer[4096];
  size_t content_length = 0;
  size_t header_end = std::string::npos;
  while (true) {
    if (header_end == std::string::npos) {
      ssize_t n = RecvWithFaults(fd, buffer, sizeof(buffer));
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        return ReadOutcome::kTimeout;
      }
      if (n <= 0) return ReadOutcome::kDisconnect;
      raw->append(buffer, static_cast<size_t>(n));
      header_end = raw->find("\r\n\r\n");
      if (header_end == std::string::npos) {
        if (raw->size() > options.max_header_bytes) {
          return ReadOutcome::kHeaderTooLarge;
        }
        continue;
      }
      if (header_end > options.max_header_bytes) {
        return ReadOutcome::kHeaderTooLarge;
      }
      // Parse Content-Length if present.
      std::string lower = ToLower(raw->substr(0, header_end));
      size_t pos = lower.find("content-length:");
      if (pos != std::string::npos) {
        long long declared = std::atoll(lower.c_str() + pos + 15);
        if (declared < 0 ||
            static_cast<size_t>(declared) > options.max_body_bytes) {
          return ReadOutcome::kBodyTooLarge;
        }
        content_length = static_cast<size_t>(declared);
      }
    }
    size_t have_body = raw->size() - (header_end + 4);
    if (have_body > options.max_body_bytes) {
      return ReadOutcome::kBodyTooLarge;
    }
    if (have_body >= content_length) return ReadOutcome::kOk;
    ssize_t n = RecvWithFaults(fd, buffer, sizeof(buffer));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return ReadOutcome::kTimeout;
    }
    if (n <= 0) return ReadOutcome::kDisconnect;
    raw->append(buffer, static_cast<size_t>(n));
  }
}

bool ParseRequest(const std::string& raw, HttpRequest* request) {
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return false;
  std::vector<std::string> parts =
      SplitWhitespace(raw.substr(0, line_end));
  if (parts.size() < 2) return false;
  request->method = parts[0];
  std::string target = parts[1];
  size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    std::string query = target.substr(qpos + 1);
    target = target.substr(0, qpos);
    for (const std::string& pair : Split(query, '&')) {
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request->params[UrlDecode(pair)] = "";
      } else {
        request->params[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  request->path = UrlDecode(target);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    request->body = raw.substr(header_end + 4);
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

void WriteResponse(int fd, const HttpResponse& response) {
  std::string head = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n",
      response.status, ReasonPhrase(response.status),
      response.content_type.c_str(), response.body.size());
  for (const auto& [name, value] : response.headers) {
    head += StrFormat("%s: %s\r\n", name.c_str(), value.c_str());
  }
  head += "\r\n";
  std::string full = head + response.body;
  size_t sent = 0;
  while (sent < full.size()) {
    ssize_t n = ::send(fd, full.data() + sent, full.size() - sent, 0);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

HttpResponse StatusOnly(int status, const char* message) {
  HttpResponse response;
  response.status = status;
  response.body = StrFormat("{\"error\":\"%s\"}", message);
  return response;
}

}  // namespace

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      int hi = hex(text[i + 1]);
      int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += c;
      }
    } else {
      out += c;
    }
  }
  return out;
}

HttpServer::HttpServer(Handler handler, HttpServerOptions options)
    : handler_(std::move(handler)), options_(options) {}

HttpServer::HttpServer(Handler handler, size_t num_threads)
    : HttpServer(std::move(handler), [num_threads] {
        HttpServerOptions options;
        options.num_threads = num_threads;
        return options;
      }()) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind(%u) failed", port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  // The pool destructor drains queued connections before returning, so
  // every accepted request gets its response.
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  static Counter* shed = MetricsRegistry::Global().GetCounter(
      "nous_http_shed_total",
      "Connections rejected with 503 because max_inflight was reached");
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.io_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.io_timeout_ms / 1000;
      tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    // Shed before queueing: a flooded server answers 503 in constant
    // time instead of stacking connections it will serve seconds late.
    if (options_.max_inflight > 0 &&
        inflight_.load(std::memory_order_relaxed) >=
            options_.max_inflight) {
      shed->Increment();
      WriteResponse(fd, StatusOnly(503, "server overloaded, retry"));
      ::close(fd);
      continue;
    }
    inflight_.fetch_add(1, std::memory_order_relaxed);
    if (pool_ != nullptr) {
      pool_->Submit([this, fd] {
        HandleConnection(fd);
        ::close(fd);
        inflight_.fetch_sub(1, std::memory_order_relaxed);
      });
    } else {
      HandleConnection(fd);
      ::close(fd);
      inflight_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void HttpServer::HandleConnection(int fd) {
  static Counter* deadline = MetricsRegistry::Global().GetCounter(
      "nous_http_deadline_exceeded_total",
      "Requests answered 408 because the client stalled past the "
      "socket deadline");
  static Counter* rejected = MetricsRegistry::Global().GetCounter(
      "nous_http_rejected_total",
      "Requests rejected before routing (400/413/431)");
  std::string raw;
  switch (ReadRequest(fd, options_, &raw)) {
    case ReadOutcome::kOk:
      break;
    case ReadOutcome::kDisconnect:
      // Nobody left to answer; just release the socket.
      return;
    case ReadOutcome::kTimeout:
      deadline->Increment();
      WriteResponse(fd, StatusOnly(408, "request deadline exceeded"));
      return;
    case ReadOutcome::kHeaderTooLarge:
      rejected->Increment();
      WriteResponse(fd, StatusOnly(431, "request headers too large"));
      return;
    case ReadOutcome::kBodyTooLarge:
      rejected->Increment();
      WriteResponse(fd, StatusOnly(413, "request body too large"));
      return;
  }
  HttpRequest request;
  HttpResponse response;
  if (!ParseRequest(raw, &request)) {
    rejected->Increment();
    response = StatusOnly(400, "malformed request");
  } else {
    response = handler_(request);
  }
  WriteResponse(fd, response);
}

}  // namespace nous
