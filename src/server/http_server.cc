#include "server/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/string_util.h"

namespace nous {

namespace {

/// Reads until the end of headers plus Content-Length body bytes.
/// Returns false on malformed input or closed connection.
bool ReadRequest(int fd, std::string* raw) {
  raw->clear();
  char buffer[4096];
  size_t content_length = 0;
  size_t header_end = std::string::npos;
  while (true) {
    if (header_end == std::string::npos) {
      ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) return false;
      raw->append(buffer, static_cast<size_t>(n));
      if (raw->size() > 1 << 20) return false;  // 1 MiB cap
      header_end = raw->find("\r\n\r\n");
      if (header_end == std::string::npos) continue;
      // Parse Content-Length if present.
      std::string lower = ToLower(raw->substr(0, header_end));
      size_t pos = lower.find("content-length:");
      if (pos != std::string::npos) {
        content_length = static_cast<size_t>(
            std::atoll(lower.c_str() + pos + 15));
        if (content_length > 1 << 20) return false;
      }
    }
    size_t have_body = raw->size() - (header_end + 4);
    if (have_body >= content_length) return true;
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) return false;
    raw->append(buffer, static_cast<size_t>(n));
  }
}

bool ParseRequest(const std::string& raw, HttpRequest* request) {
  size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos) return false;
  std::vector<std::string> parts =
      SplitWhitespace(raw.substr(0, line_end));
  if (parts.size() < 2) return false;
  request->method = parts[0];
  std::string target = parts[1];
  size_t qpos = target.find('?');
  if (qpos != std::string::npos) {
    std::string query = target.substr(qpos + 1);
    target = target.substr(0, qpos);
    for (const std::string& pair : Split(query, '&')) {
      size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        request->params[UrlDecode(pair)] = "";
      } else {
        request->params[UrlDecode(pair.substr(0, eq))] =
            UrlDecode(pair.substr(eq + 1));
      }
    }
  }
  request->path = UrlDecode(target);
  size_t header_end = raw.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    request->body = raw.substr(header_end + 4);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& response) {
  const char* reason = response.status == 200   ? "OK"
                       : response.status == 400 ? "Bad Request"
                       : response.status == 404 ? "Not Found"
                                                : "Error";
  std::string head = StrFormat(
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, reason, response.content_type.c_str(),
      response.body.size());
  std::string full = head + response.body;
  size_t sent = 0;
  while (sent < full.size()) {
    ssize_t n = ::send(fd, full.data() + sent, full.size() - sent, 0);
    if (n <= 0) return;
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

std::string UrlDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '+') {
      out += ' ';
    } else if (c == '%' && i + 2 < text.size()) {
      auto hex = [](char h) -> int {
        if (h >= '0' && h <= '9') return h - '0';
        if (h >= 'a' && h <= 'f') return h - 'a' + 10;
        if (h >= 'A' && h <= 'F') return h - 'A' + 10;
        return -1;
      };
      int hi = hex(text[i + 1]);
      int lo = hex(text[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
      } else {
        out += c;
      }
    } else {
      out += c;
    }
  }
  return out;
}

HttpServer::HttpServer(Handler handler, size_t num_threads)
    : handler_(std::move(handler)), num_threads_(num_threads) {}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(StrFormat("bind(%u) failed", port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (num_threads_ > 1) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  running_.store(true);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  // The pool destructor drains queued connections before returning, so
  // every accepted request gets its response.
  pool_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (pool_ != nullptr) {
      pool_->Submit([this, fd] {
        HandleConnection(fd);
        ::close(fd);
      });
    } else {
      HandleConnection(fd);
      ::close(fd);
    }
  }
}

void HttpServer::HandleConnection(int fd) {
  std::string raw;
  if (!ReadRequest(fd, &raw)) return;
  HttpRequest request;
  HttpResponse response;
  if (!ParseRequest(raw, &request)) {
    response.status = 400;
    response.body = "{\"error\":\"malformed request\"}";
  } else {
    response = handler_(request);
  }
  WriteResponse(fd, response);
}

}  // namespace nous
