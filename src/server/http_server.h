#ifndef NOUS_SERVER_HTTP_SERVER_H_
#define NOUS_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"

namespace nous {

/// One parsed HTTP/1.1 request (the subset the demo UI needs).
struct HttpRequest {
  std::string method;  // "GET", "POST"
  std::string path;    // "/api/query" (query string stripped)
  /// Decoded query parameters (?q=...&source=...).
  std::map<std::string, std::string> params;
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers (name, value), emitted verbatim. NousApi
  /// stamps X-Nous-Trace-Id here so clients can correlate a response
  /// with its spans in /api/trace and the slow-query log.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Overload and abuse limits (DESIGN.md §5.10: the server sheds load
/// it cannot absorb instead of queueing without bound).
struct HttpServerOptions {
  /// Connection workers (<= 1 = handle on the accept thread).
  size_t num_threads = 0;
  /// Connections in flight (queued or being handled) before new ones
  /// are shed with 503. 0 = unbounded (the pre-hardening behavior).
  size_t max_inflight = 128;
  /// Per-socket receive/send deadline; a client that stalls past it
  /// gets 408 instead of pinning a worker. 0 = no deadline.
  int io_timeout_ms = 10000;
  /// Header bytes before 431 / body bytes before 413.
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 1 << 20;
};

/// Percent-decodes a URL component ('+' becomes space).
std::string UrlDecode(std::string_view text);

/// Minimal HTTP server over POSIX sockets — the self-contained
/// stand-in for the paper's web demo front-end (Figure 6, demo
/// feature 4). With `num_threads` <= 1 requests are handled
/// sequentially on the accept thread (the original demo behavior);
/// with more, connections are dispatched onto a worker pool so
/// queries are answered concurrently with ingestion — the handler
/// must then be thread-safe (NousApi is: reads take the pipeline's
/// shared lock). Deliberately not a production web server, but hard
/// to knock over: oversized, stalled, malformed, or flooding clients
/// get 431/413/408/400/503 and a closed socket, never an unbounded
/// buffer or a wedged worker.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Handler handler, HttpServerOptions options);
  explicit HttpServer(Handler handler, size_t num_threads = 0);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept
  /// thread. Fails with Internal on socket errors.
  Status Start(uint16_t port);

  /// Stops accepting, joins the accept thread, and drains connections
  /// already in flight on the worker pool — a graceful drain: every
  /// accepted request still gets its response. Idempotent.
  void Stop();

  /// The bound port (valid after a successful Start).
  uint16_t port() const { return port_; }
  bool running() const { return running_.load(); }
  /// Connections currently queued or being handled.
  size_t inflight() const { return inflight_.load(); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  Handler handler_;
  HttpServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<size_t> inflight_{0};
  std::thread thread_;
  /// Connection workers; null in single-threaded mode.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace nous

#endif  // NOUS_SERVER_HTTP_SERVER_H_
