#ifndef NOUS_SERVER_JSON_WRITER_H_
#define NOUS_SERVER_JSON_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

namespace nous {

/// Minimal streaming JSON writer (objects, arrays, strings, numbers,
/// booleans) with correct string escaping — just enough for the query
/// API, no external dependency.
///
///   JsonWriter w;
///   w.BeginObject();
///   w.Key("answer");
///   w.String("hello");
///   w.EndObject();
///   w.Result();  // {"answer":"hello"}
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  /// Must be called inside an object, before the value.
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  JsonWriter& Number(double value);
  JsonWriter& Int(long long value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The serialized document (valid once all containers are closed).
  const std::string& Result() const { return out_; }

  /// Escapes a string per JSON rules (quotes not included).
  static std::string Escape(std::string_view text);

 private:
  void Separator();

  std::string out_;
  /// Per-depth flag: whether a value was already emitted at this level.
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

}  // namespace nous

#endif  // NOUS_SERVER_JSON_WRITER_H_
