#include "server/api.h"

#include <cstdlib>

#include "common/string_util.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_buffer.h"
#include "server/json_writer.h"

namespace nous {

namespace {

HttpResponse JsonError(int status, const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.String(message);
  w.EndObject();
  HttpResponse response;
  response.status = status;
  response.body = w.Result();
  return response;
}

}  // namespace

NousApi::NousApi(Nous* nous) : nous_(nous) {}

void NousApi::ConfigureReplication(const ReplicationTelemetry* telemetry,
                                   uint64_t max_staleness_versions,
                                   bool read_only) {
  replication_ = telemetry;
  max_staleness_versions_ = max_staleness_versions;
  read_only_ = read_only;
}

std::string NousApi::AnswerJson(const Answer& answer,
                                const PropertyGraph& graph) {
  JsonWriter w;
  w.BeginObject();
  w.Key("kind");
  w.String(QueryKindName(answer.kind));
  w.Key("facts");
  w.BeginArray();
  for (const FactLine& f : answer.facts) {
    w.BeginObject();
    w.Key("subject");
    w.String(f.subject);
    w.Key("predicate");
    w.String(f.predicate);
    w.Key("object");
    w.String(f.object);
    w.Key("confidence");
    w.Number(f.confidence);
    w.Key("curated");
    w.Bool(f.curated);
    w.Key("source");
    w.String(f.source);
    w.Key("timestamp");
    w.Int(f.timestamp);
    w.EndObject();
  }
  w.EndArray();
  w.Key("hot_entities");
  w.BeginArray();
  for (const auto& [name, count] : answer.hot_entities) {
    w.BeginObject();
    w.Key("entity");
    w.String(name);
    w.Key("activity");
    w.Int(static_cast<long long>(count));
    w.EndObject();
  }
  w.EndArray();
  w.Key("patterns");
  w.BeginArray();
  for (const RenderedPattern& p : answer.patterns) {
    w.BeginObject();
    w.Key("pattern");
    w.String(p.description);
    w.Key("support");
    w.Int(static_cast<long long>(p.support));
    w.EndObject();
  }
  w.EndArray();
  w.Key("paths");
  w.BeginArray();
  for (const PathResult& path : answer.paths) {
    w.BeginObject();
    w.Key("coherence");
    w.Number(path.coherence);
    w.Key("hops");
    w.BeginArray();
    for (size_t i = 0; i < path.vertices.size(); ++i) {
      w.String(graph.VertexLabel(path.vertices[i]));
      if (i < path.edges.size()) {
        w.String(graph.predicates().GetString(
            graph.Edge(path.edges[i]).predicate));
      }
    }
    w.EndArray();
    w.Key("sources");
    w.BeginArray();
    for (SourceId s : path.sources) {
      w.String(s == kInvalidSource ? ""
                                   : graph.sources().GetString(s));
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.Key("distinct_sources");
  w.Int(static_cast<long long>(answer.distinct_sources));
  w.EndObject();
  return w.Result();
}

HttpResponse NousApi::HandleQuery(const HttpRequest& request) {
  NOUS_SPAN("api_query");
  auto it = request.params.find("q");
  if (it == request.params.end() || it->second.empty()) {
    return JsonError(400, "missing query parameter q");
  }
  // Snapshot serving: execution and serialization read the same
  // immutable snapshot, so neither takes kg_mutex and the graph (and
  // its string dictionaries) cannot grow underneath AnswerJson.
  std::shared_ptr<const KgSnapshot> snap;
  auto answer = nous_->Ask(it->second, &snap);
  if (!answer.ok()) {
    return JsonError(
        answer.status().code() == StatusCode::kNotFound ? 404 : 400,
        answer.status().ToString());
  }
  HttpResponse response;
  if (snap != nullptr) {
    response.body = AnswerJson(*answer, snap->graph());
  } else {
    // Locked fallback (snapshot publishing disabled): one shared-lock
    // span must cover the serialization too.
    ReaderMutexLock lock(nous_->kg_mutex());
    response.body = AnswerJson(*answer, nous_->graph());
  }
  return response;
}

HttpResponse NousApi::HandleStats() {
  NOUS_SPAN("api_stats");
  // Snapshot path: walk the latest published view, no lock. Locked
  // fallback only when snapshot publishing is disabled.
  GraphStats stats;
  PipelineStats ps;
  uint64_t kg_version = 0;
  std::shared_ptr<const KgSnapshot> snap = nous_->snapshot();
  if (snap != nullptr) {
    stats = ComputeGraphStats(snap->graph());
    ps = snap->stats();
    kg_version = snap->version();
  } else {
    ReaderMutexLock lock(nous_->kg_mutex());
    stats = ComputeGraphStats(nous_->graph());
    ps = nous_->stats();
    kg_version = nous_->kg_version();
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("vertices");
  w.Int(static_cast<long long>(stats.vertices));
  w.Key("edges");
  w.Int(static_cast<long long>(stats.live_edges));
  w.Key("curated_edges");
  w.Int(static_cast<long long>(stats.curated_edges));
  w.Key("extracted_edges");
  w.Int(static_cast<long long>(stats.extracted_edges));
  w.Key("predicates");
  w.Int(static_cast<long long>(stats.distinct_predicates));
  w.Key("documents");
  w.Int(static_cast<long long>(ps.documents));
  w.Key("accepted_triples");
  w.Int(static_cast<long long>(ps.accepted_triples));
  w.Key("new_entities");
  w.Int(static_cast<long long>(ps.new_entities));
  w.Key("mean_extracted_confidence");
  w.Number(stats.extracted_confidence.Mean());
  // Serving-tier basics, so operators need not scrape /api/metrics.
  w.Key("kg_version");
  w.Int(static_cast<long long>(kg_version));
  w.Key("snapshot_publishes");
  w.Int(static_cast<long long>(
      nous_->pipeline().snapshot_store().publish_count()));
  w.Key("snapshot_graph_bytes");
  w.Int(static_cast<long long>(snap != nullptr ? snap->approx_graph_bytes()
                                               : 0));
  // Live COW split: how much of the snapshot is shared with the live
  // graph vs retained privately (amplification = private / total).
  CowFootprint snap_fp;
  if (snap != nullptr) snap_fp = snap->graph().Footprint();
  w.Key("snapshot_graph_shared_bytes");
  w.Int(static_cast<long long>(snap_fp.shared_bytes));
  w.Key("snapshot_graph_private_bytes");
  w.Int(static_cast<long long>(snap_fp.private_bytes));
  if (replication_ != nullptr) {
    ReplicationView view = replication_->View();
    w.Key("replication");
    w.BeginObject();
    w.Key("role");
    w.String(view.role);
    w.Key("connected");
    w.Bool(view.connected);
    w.Key("last_seq");
    w.Int(static_cast<long long>(view.last_seq));
    w.Key("kg_version");
    w.Int(static_cast<long long>(view.kg_version));
    w.Key("leader_seq");
    w.Int(static_cast<long long>(view.leader_seq));
    w.Key("leader_kg_version");
    w.Int(static_cast<long long>(view.leader_kg_version));
    w.Key("lag_versions");
    w.Int(static_cast<long long>(view.lag_versions));
    w.Key("max_staleness_versions");
    w.Int(static_cast<long long>(max_staleness_versions_));
    w.Key("followers");
    w.Int(static_cast<long long>(view.followers));
    w.Key("frames_sent");
    w.Int(static_cast<long long>(view.frames_sent));
    w.Key("bytes_sent");
    w.Int(static_cast<long long>(view.bytes_sent));
    w.Key("checkpoints_sent");
    w.Int(static_cast<long long>(view.checkpoints_sent));
    w.Key("overflow_disconnects");
    w.Int(static_cast<long long>(view.overflow_disconnects));
    w.Key("frames_applied");
    w.Int(static_cast<long long>(view.frames_applied));
    w.Key("checkpoints_applied");
    w.Int(static_cast<long long>(view.checkpoints_applied));
    w.Key("reconnects");
    w.Int(static_cast<long long>(view.reconnects));
    w.Key("resyncs");
    w.Int(static_cast<long long>(view.resyncs));
    w.Key("gaps");
    w.Int(static_cast<long long>(view.gaps));
    w.Key("corrupt_frames");
    w.Int(static_cast<long long>(view.corrupt_frames));
    w.EndObject();
  }
  w.Key("query_cache");
  w.BeginObject();
  const QueryCache* cache = nous_->query_cache();
  w.Key("enabled");
  w.Bool(cache != nullptr);
  QueryCache::Stats cache_stats;
  if (cache != nullptr) cache_stats = cache->stats();
  w.Key("hits");
  w.Int(static_cast<long long>(cache_stats.hits));
  w.Key("misses");
  w.Int(static_cast<long long>(cache_stats.misses));
  w.Key("evictions");
  w.Int(static_cast<long long>(cache_stats.evictions));
  w.EndObject();
  // Per-stage latency quantiles from the process-wide registry (every
  // nous_*_latency_seconds histogram, seconds).
  w.Key("latency");
  w.BeginObject();
  for (const auto& row : MetricsRegistry::Global().HistogramRows()) {
    w.Key(row.name);
    w.BeginObject();
    w.Key("count");
    w.Int(static_cast<long long>(row.count));
    w.Key("p50");
    w.Number(row.p50);
    w.Key("p90");
    w.Number(row.p90);
    w.Key("p99");
    w.Number(row.p99);
    w.Key("max");
    w.Number(row.max);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  HttpResponse response;
  response.body = w.Result();
  return response;
}

HttpResponse NousApi::HandleMetrics() {
  NOUS_SPAN("api_metrics");
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = MetricsRegistry::Global().RenderPrometheus();
  return response;
}

HttpResponse NousApi::HandleIngest(const HttpRequest& request) {
  NOUS_SPAN_VAR(span, "api_ingest");
  span.Attr("body_bytes", request.body.size());
  if (read_only_) {
    // A replica's KG is derived from the leader's WAL; accepting a
    // local write would fork it from the replication stream.
    return JsonError(403, "read-only replica: send writes to the leader");
  }
  if (request.body.empty()) {
    return JsonError(400, "empty body; POST the document text");
  }
  // Checked date params: ?year=abc or ?month=0 used to flow atoi
  // garbage straight into edge timestamps, poisoning trending and
  // max-timestamp queries with dates that never existed.
  Date date{2016, 1, 1};
  struct DateField {
    const char* key;
    int* slot;
    int64_t min;
    int64_t max;
  };
  const DateField fields[] = {{"year", &date.year, 1, 9999},
                              {"month", &date.month, 1, 12},
                              {"day", &date.day, 1, 31}};
  for (const DateField& field : fields) {
    auto it = request.params.find(field.key);
    if (it == request.params.end()) continue;
    int64_t value = 0;
    if (!ParseInt64(it->second, &value) || value < field.min ||
        value > field.max) {
      return JsonError(
          400, StrFormat("invalid %s '%s': expected an integer in [%lld, "
                         "%lld]",
                         field.key, it->second.c_str(),
                         static_cast<long long>(field.min),
                         static_cast<long long>(field.max)));
    }
    *field.slot = static_cast<int>(value);
  }
  std::string source = "web";
  if (auto it = request.params.find("source");
      it != request.params.end() && !it->second.empty()) {
    source = it->second;
  }
  auto read_counts = [this](size_t* accepted, size_t* edges) {
    if (auto snap = nous_->snapshot()) {
      *accepted = snap->stats().accepted_triples;
      *edges = snap->graph().NumEdges();
      return;
    }
    ReaderMutexLock lock(nous_->kg_mutex());
    *accepted = nous_->stats().accepted_triples;
    *edges = nous_->graph().NumEdges();
  };
  size_t accepted_before = 0, edges_before = 0;
  read_counts(&accepted_before, &edges_before);
  Status status = nous_->IngestText(request.body, date, source);
  if (!status.ok()) {
    // Durable logging failed: nothing was committed, so the honest
    // answer is "retry later", not a fabricated accept count.
    return JsonError(503, "ingest not durable: " + status.ToString());
  }
  // The ingest call published its snapshot before returning
  // (read-your-writes), so the counts below include this document.
  size_t accepted_after = 0, edges_after = 0;
  read_counts(&accepted_after, &edges_after);
  JsonWriter w;
  w.BeginObject();
  w.Key("accepted");
  w.Int(static_cast<long long>(accepted_after - accepted_before));
  w.Key("total_edges");
  w.Int(static_cast<long long>(edges_after));
  w.EndObject();
  HttpResponse response;
  response.body = w.Result();
  return response;
}

HttpResponse NousApi::HandleTrace(const HttpRequest& request) {
  NOUS_SPAN("api_trace");
  size_t limit = 512;
  if (auto it = request.params.find("limit"); it != request.params.end()) {
    if (!ParseSize(it->second, &limit, /*min=*/1)) {
      return JsonError(400, "limit must be a positive integer");
    }
  }
  std::vector<SpanRecord> spans = TraceBuffer::Global().Snapshot(limit);
  // Chrome trace-event format: complete events (ph "X") with
  // microsecond timestamps, one track per recording thread. Span ids
  // ride in args as decimal strings (64-bit ids do not survive JSON's
  // double precision) so tools — and the CI smoke test — can rebuild
  // the parent/child tree.
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();
  for (const SpanRecord& span : spans) {
    w.BeginObject();
    w.Key("name");
    w.String(span.name);
    w.Key("cat");
    w.String("nous");
    w.Key("ph");
    w.String("X");
    w.Key("ts");
    w.Int(static_cast<long long>(span.start_us));
    w.Key("dur");
    w.Int(static_cast<long long>(span.duration_us));
    w.Key("pid");
    w.Int(1);
    w.Key("tid");
    w.Int(static_cast<long long>(span.thread_index));
    w.Key("args");
    w.BeginObject();
    w.Key("trace_id");
    w.String(StrFormat("%llu",
                       static_cast<unsigned long long>(span.trace_id)));
    w.Key("span_id");
    w.String(StrFormat("%llu",
                       static_cast<unsigned long long>(span.span_id)));
    w.Key("parent_span_id");
    w.String(StrFormat(
        "%llu", static_cast<unsigned long long>(span.parent_span_id)));
    for (const SpanAttr& attr : span.attrs) {
      w.Key(attr.key);
      switch (attr.kind) {
        case SpanAttr::Kind::kInt:
          w.Int(static_cast<long long>(attr.int_value));
          break;
        case SpanAttr::Kind::kDouble:
          w.Number(attr.double_value);
          break;
        case SpanAttr::Kind::kString:
          w.String(attr.string_value);
          break;
      }
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.Key("displayTimeUnit");
  w.String("ms");
  w.EndObject();
  HttpResponse response;
  response.body = w.Result();
  return response;
}

HttpResponse NousApi::Route(const HttpRequest& request) {
  if (request.path == "/" && request.method == "GET") {
    HttpResponse response;
    response.content_type = "text/html; charset=utf-8";
    response.body = DemoPageHtml();
    return response;
  }
  if (request.path == "/api/query" && request.method == "GET") {
    return HandleQuery(request);
  }
  if (request.path == "/api/stats" && request.method == "GET") {
    return HandleStats();
  }
  if (request.path == "/api/metrics" && request.method == "GET") {
    return HandleMetrics();
  }
  if (request.path == "/api/trace" && request.method == "GET") {
    return HandleTrace(request);
  }
  if (request.path == "/api/healthz" && request.method == "GET") {
    HttpResponse response;
    response.body = "{\"status\":\"ok\"}";
    return response;
  }
  if (request.path == "/api/readyz" && request.method == "GET") {
    if (!ready()) return JsonError(503, "draining");
    if (replication_ != nullptr && max_staleness_versions_ > 0) {
      ReplicationView view = replication_->View();
      if (view.role == "follower" && view.leader_kg_version == 0) {
        // No leader heartbeat yet: staleness is unknowable, and
        // "unknown" must not read as "fresh".
        return JsonError(503, "replica staleness unknown (no leader "
                              "heartbeat yet)");
      }
      if (view.lag_versions > max_staleness_versions_) {
        return JsonError(
            503, StrFormat("replica lags leader by %llu KG versions "
                           "(max allowed %llu)",
                           static_cast<unsigned long long>(
                               view.lag_versions),
                           static_cast<unsigned long long>(
                               max_staleness_versions_)));
      }
    }
    HttpResponse response;
    response.body = "{\"status\":\"ready\"}";
    return response;
  }
  if (request.path == "/api/ingest" && request.method == "POST") {
    return HandleIngest(request);
  }
  return JsonError(404, "no such endpoint: " + request.path);
}

HttpResponse NousApi::Handle(const HttpRequest& request) {
  // Root span of the request's trace: everything the handlers run —
  // including work fanned out to pool threads — parents under it.
  NOUS_SPAN_VAR(span, "http_request");
  span.Attr("method", request.method);
  span.Attr("path", request.path);
  HttpResponse response = Route(request);
  span.Attr("status", response.status);
  response.headers.emplace_back(
      "X-Nous-Trace-Id",
      StrFormat("%llu", static_cast<unsigned long long>(span.trace_id())));
  // The KG version this process would serve right now. Combined with
  // X-Nous-Kg-Version from the leader, clients can bound the staleness
  // of any replica read without a second round trip.
  uint64_t kg_version = 0;
  if (std::shared_ptr<const KgSnapshot> snap = nous_->snapshot();
      snap != nullptr) {
    kg_version = snap->version();
  } else {
    ReaderMutexLock lock(nous_->kg_mutex());
    kg_version = nous_->kg_version();
  }
  response.headers.emplace_back(
      "X-Nous-Kg-Version",
      StrFormat("%llu", static_cast<unsigned long long>(kg_version)));
  // Label by status code only: paths are client-controlled and would
  // make the label set unbounded.
  MetricsRegistry::Global()
      .GetCounter("nous_http_requests_total", "HTTP requests by status code",
                  {{"code", StrFormat("%d", response.status)}})
      ->Increment();
  return response;
}

const char* DemoPageHtml() {
  return R"html(<!doctype html>
<html><head><meta charset="utf-8"><title>NOUS demo</title>
<style>
 body{font-family:sans-serif;max-width:60rem;margin:2rem auto;padding:0 1rem}
 input{width:70%;padding:.5rem;font-size:1rem}
 button{padding:.5rem 1rem;font-size:1rem}
 pre{background:#f4f4f4;padding:1rem;overflow-x:auto;white-space:pre-wrap}
 .hint{color:#666;font-size:.9rem}
</style></head><body>
<h1>NOUS &mdash; dynamic knowledge graph</h1>
<p class="hint">Try: <code>tell me about DJI</code> &middot;
<code>what is trending</code> &middot; <code>show patterns</code> &middot;
<code>explain DJI and FAA</code> &middot;
<code>paths from A to B</code></p>
<input id="q" placeholder="ask a question" autofocus>
<button onclick="ask()">Ask</button>
<pre id="out">ready</pre>
<script>
async function ask(){
  const q=document.getElementById('q').value;
  const r=await fetch('/api/query?q='+encodeURIComponent(q));
  document.getElementById('out').textContent=
      JSON.stringify(await r.json(),null,2);
}
document.getElementById('q').addEventListener('keydown',
    e=>{if(e.key==='Enter')ask();});
</script></body></html>)html";
}

}  // namespace nous
