#include "server/json_writer.h"

#include <cmath>

#include "common/string_util.h"

namespace nous {

std::string JsonWriter::Escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::Separator() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Separator();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Separator();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_value_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  Separator();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Separator();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Separator();
  if (std::isfinite(value)) {
    out_ += StrFormat("%.10g", value);
  } else {
    out_ += "null";
  }
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  Separator();
  out_ += StrFormat("%lld", value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Separator();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Separator();
  out_ += "null";
  return *this;
}

}  // namespace nous
