#include "mapping/predicate_mapper.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/string_util.h"

namespace nous {

PredicateMapper::PredicateMapper(const Ontology* ontology,
                                 MapperConfig config)
    : ontology_(ontology), config_(config) {}

void PredicateMapper::AddEvidence(std::string_view predicate,
                                  std::string_view raw_phrase,
                                  double weight) {
  phrase_evidence_[ToLower(raw_phrase)][std::string(predicate)] += weight;
}

void PredicateMapper::LoadDefaultSeeds() {
  // 2-3 seed phrases per predicate (paper: "bootstrap each predicate
  // model with 5-10 seed examples"); the rest accrues via distant
  // supervision.
  const struct {
    const char* predicate;
    const char* phrase;
  } kSeeds[] = {
      {"acquired", "acquire"},        {"acquired", "buy"},
      {"partneredWith", "partner_with"},
      {"partneredWith", "collaborate_with"},
      {"investsIn", "invest_in"},
      {"launched", "launch"},         {"launched", "unveil"},
      {"launched", "introduce"},
      {"uses", "use"},                {"uses", "deploy"},
      {"uses", "employ"},
      {"competesWith", "compete_with"},
      {"regulates", "regulate"},      {"regulates", "investigate"},
      {"ceoOf", "lead"},
      {"worksFor", "work_for"},       {"worksFor", "join"},
      {"manufactures", "manufacture"},
      {"manufactures", "make"},       {"manufactures", "produce"},
      {"headquarteredIn", "headquarter_in"},
      {"headquarteredIn", "base_in"},
      {"authored", "author"},
      {"cites", "cite"},
      {"publishedIn", "publish_in"},
      {"accessed", "access"},
      {"downloaded", "download"},
      {"emailed", "email"},
  };
  for (const auto& seed : kSeeds) {
    AddEvidence(seed.predicate, seed.phrase, 1.0);
  }
}

Status PredicateMapper::LoadSeedsFromStream(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::vector<std::string> fields = Split(std::string(trimmed), '\t');
    if (fields.size() < 2 || fields.size() > 3 || fields[1].empty()) {
      return Status::InvalidArgument(StrFormat(
          "seed line %zu: expected '<predicate>\\t<phrase>[\\t<w>]'",
          line_no));
    }
    if (!ontology_->FindPredicate(fields[0]).has_value()) {
      return Status::InvalidArgument(
          StrFormat("seed line %zu: unknown predicate '%s'", line_no,
                    fields[0].c_str()));
    }
    double weight = 1.0;
    if (fields.size() == 3) {
      char* end = nullptr;
      weight = std::strtod(fields[2].c_str(), &end);
      if (end == fields[2].c_str() || weight <= 0) {
        return Status::InvalidArgument(
            StrFormat("seed line %zu: bad weight", line_no));
      }
    }
    AddEvidence(fields[0], fields[1], weight);
  }
  return Status::Ok();
}

bool PredicateMapper::TypeGatePasses(std::string_view type,
                                     std::string_view required) const {
  if (required.empty()) return true;
  // Unknown or generic types pass permissively: freshly created
  // entities carry no trusted ontology type yet.
  if (type.empty() || type == "thing") return true;
  if (!ontology_->HasType(type)) return true;
  // Compatible when the types sit on one taxonomy chain: either the
  // argument satisfies the constraint (company <= organization) or it
  // is a generalization that could (a new entity NER-typed
  // "organization" may well be the company the schema demands).
  return ontology_->IsSubtypeOf(type, required) ||
         ontology_->IsSubtypeOf(required, type);
}

MappingDecision PredicateMapper::Map(std::string_view raw_phrase,
                                     std::string_view subject_type,
                                     std::string_view object_type) const {
  MappingDecision decision;
  auto it = phrase_evidence_.find(ToLower(raw_phrase));
  if (it == phrase_evidence_.end()) return decision;
  // Canonical (name-sorted) iteration: the evidence map is unordered,
  // so both the FP evidence total and the argmax tie-break below would
  // otherwise depend on insertion history — which a checkpoint restore
  // does not reproduce (DESIGN.md §5.10).
  std::vector<std::pair<std::string_view, double>> entries;
  entries.reserve(it->second.size());
  for (const auto& [pred, weight] : it->second) {
    entries.emplace_back(pred, weight);
  }
  std::sort(entries.begin(), entries.end());
  double total = 0;
  for (const auto& [pred, weight] : entries) total += weight;
  if (total < config_.min_total_evidence) return decision;
  for (const auto& [pred, weight] : entries) {
    double score = weight / total;
    if (score < config_.min_map_score) continue;
    if (score <= decision.score) continue;
    auto schema = ontology_->FindPredicate(pred);
    if (!schema.has_value()) continue;
    if (!TypeGatePasses(subject_type, schema->domain_type)) continue;
    if (!TypeGatePasses(object_type, schema->range_type)) continue;
    decision.mapped = true;
    decision.predicate = pred;
    decision.score = score;
  }
  return decision;
}

double PredicateMapper::EvidenceWeight(std::string_view predicate,
                                       std::string_view raw_phrase) const {
  auto it = phrase_evidence_.find(ToLower(raw_phrase));
  if (it == phrase_evidence_.end()) return 0;
  auto jt = it->second.find(std::string(predicate));
  if (jt == it->second.end()) return 0;
  return jt->second;
}

std::vector<std::string> PredicateMapper::KnownPhrases() const {
  std::vector<std::string> phrases;
  phrases.reserve(phrase_evidence_.size());
  for (const auto& [phrase, preds] : phrase_evidence_) {
    phrases.push_back(phrase);
  }
  return phrases;
}

void PredicateMapper::SaveBinary(BinaryWriter* writer) const {
  std::vector<const std::string*> phrases;
  phrases.reserve(phrase_evidence_.size());
  for (const auto& [phrase, preds] : phrase_evidence_) {
    phrases.push_back(&phrase);
  }
  std::sort(phrases.begin(), phrases.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  writer->U64(phrases.size());
  for (const std::string* phrase : phrases) {
    writer->Str(*phrase);
    const auto& preds = phrase_evidence_.at(*phrase);
    std::vector<std::pair<std::string, double>> entries(preds.begin(),
                                                        preds.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    writer->U64(entries.size());
    for (const auto& [pred, weight] : entries) {
      writer->Str(pred);
      writer->F64(weight);
    }
  }
}

Status PredicateMapper::LoadBinary(BinaryReader* reader) {
  uint64_t num_phrases = 0;
  NOUS_RETURN_IF_ERROR(reader->Count(&num_phrases, 8 + 8));
  phrase_evidence_.clear();
  phrase_evidence_.reserve(num_phrases);
  for (uint64_t i = 0; i < num_phrases; ++i) {
    std::string phrase;
    NOUS_RETURN_IF_ERROR(reader->Str(&phrase));
    uint64_t num_preds = 0;
    NOUS_RETURN_IF_ERROR(reader->Count(&num_preds, 8 + 8));
    auto& preds = phrase_evidence_[std::move(phrase)];
    preds.reserve(num_preds);
    for (uint64_t j = 0; j < num_preds; ++j) {
      std::string pred;
      double weight = 0;
      NOUS_RETURN_IF_ERROR(reader->Str(&pred));
      NOUS_RETURN_IF_ERROR(reader->F64(&weight));
      preds.emplace(std::move(pred), weight);
    }
  }
  return Status::Ok();
}

}  // namespace nous
