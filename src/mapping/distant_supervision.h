#ifndef NOUS_MAPPING_DISTANT_SUPERVISION_H_
#define NOUS_MAPPING_DISTANT_SUPERVISION_H_

#include <string>
#include <vector>

#include "mapping/predicate_mapper.h"

namespace nous {

/// One training instance for the predicate-model learner: a raw
/// relation phrase with its linked arguments' types, and — when the
/// (subject, object) pair matched a curated KB fact — that fact's
/// predicate (the distant label).
struct DsExample {
  std::string raw_phrase;
  std::string subject_type;
  std::string object_type;
  /// Distant label; empty when the pair matched no KB fact.
  std::string kb_predicate;
};

struct DsTrainerConfig {
  /// Semi-supervised rounds after the aligned bootstrap.
  size_t expansion_iterations = 2;
  /// Unaligned examples whose current mapping scores at least this are
  /// promoted to pseudo-labeled evidence.
  double promote_threshold = 0.6;
  /// Evidence weight of an aligned example.
  double aligned_weight = 1.0;
  /// Evidence weight of a promoted (pseudo-labeled) example.
  double promoted_weight = 0.25;
};

struct DsTrainResult {
  size_t aligned_used = 0;
  size_t promoted = 0;
};

/// Freedman-style "extreme extraction" trainer (§3.3): bootstraps each
/// predicate model from seed phrases plus KB-aligned examples, then
/// expands the training set semi-supervised by promoting confidently
/// mapped unaligned examples.
class DistantSupervisionTrainer {
 public:
  explicit DistantSupervisionTrainer(DsTrainerConfig config = {})
      : config_(config) {}

  /// Mutates `mapper` with evidence from `examples`.
  DsTrainResult Train(const std::vector<DsExample>& examples,
                      PredicateMapper* mapper) const;

 private:
  DsTrainerConfig config_;
};

}  // namespace nous

#endif  // NOUS_MAPPING_DISTANT_SUPERVISION_H_
