#ifndef NOUS_MAPPING_PREDICATE_MAPPER_H_
#define NOUS_MAPPING_PREDICATE_MAPPER_H_

#include <iostream>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/binary_io.h"
#include "common/status.h"
#include "kb/ontology.h"

namespace nous {

struct MapperConfig {
  /// Minimum normalized phrase score to accept a mapping.
  double min_map_score = 0.3;
  /// Minimum total evidence mass a phrase needs before it maps at all.
  /// Keeps a single distant-supervision co-occurrence from instantly
  /// creating a trusted predicate model.
  double min_total_evidence = 0.75;
};

/// Outcome of mapping one raw relation phrase.
struct MappingDecision {
  bool mapped = false;
  std::string predicate;  // ontology predicate when mapped
  double score = 0.0;
};

/// Rule-based per-predicate models (§3.3): each ontology predicate owns
/// a weighted set of raw relation phrases plus the schema's type
/// constraints. OpenIE produces far more relation phrases than the
/// ontology has predicates; this maps them down (or reports unmapped,
/// in which case the pipeline keeps the raw phrase as an extracted
/// predicate).
class PredicateMapper {
 public:
  /// `ontology` must outlive the mapper.
  explicit PredicateMapper(const Ontology* ontology,
                           MapperConfig config = {});

  /// Adds evidence that `raw_phrase` expresses `predicate`.
  void AddEvidence(std::string_view predicate, std::string_view raw_phrase,
                   double weight);

  /// Seed examples for the drone/citation/enterprise ontology: a
  /// handful of phrases per predicate, deliberately not exhaustive
  /// (distant supervision fills the rest).
  void LoadDefaultSeeds();

  /// Loads seed evidence from a tab-separated stream (domain
  /// authoring):
  ///   <predicate>\t<raw_phrase>[\t<weight>]
  /// '#' comments and blank lines ignored; unknown ontology
  /// predicates are InvalidArgument.
  Status LoadSeedsFromStream(std::istream& in);

  /// Maps a raw phrase given the linked arguments' type names (empty
  /// or generic types pass the gate permissively — new entities have
  /// no trusted type yet).
  MappingDecision Map(std::string_view raw_phrase,
                      std::string_view subject_type,
                      std::string_view object_type) const;

  /// Accumulated weight for (predicate, phrase); 0 when absent.
  double EvidenceWeight(std::string_view predicate,
                        std::string_view raw_phrase) const;

  /// Phrases with any evidence, for diagnostics.
  std::vector<std::string> KnownPhrases() const;

  const Ontology& ontology() const { return *ontology_; }

  /// Checkpoint serialization of the learned phrase evidence (seeds
  /// included); the ontology pointer and config are reconstructed by
  /// the caller.
  void SaveBinary(BinaryWriter* writer) const;
  Status LoadBinary(BinaryReader* reader);

 private:
  bool TypeGatePasses(std::string_view type,
                      std::string_view required) const;

  const Ontology* ontology_;
  MapperConfig config_;
  /// phrase -> (predicate -> weight)
  std::unordered_map<std::string, std::unordered_map<std::string, double>>
      phrase_evidence_;
};

}  // namespace nous

#endif  // NOUS_MAPPING_PREDICATE_MAPPER_H_
