#include "mapping/distant_supervision.h"

namespace nous {

DsTrainResult DistantSupervisionTrainer::Train(
    const std::vector<DsExample>& examples, PredicateMapper* mapper) const {
  DsTrainResult result;
  // Round 0: aligned examples are direct evidence.
  for (const DsExample& ex : examples) {
    if (ex.kb_predicate.empty()) continue;
    mapper->AddEvidence(ex.kb_predicate, ex.raw_phrase,
                        config_.aligned_weight);
    ++result.aligned_used;
  }
  // Rounds 1..k: promote confident unaligned examples. Each round may
  // unlock further promotions as phrase weights shift.
  for (size_t round = 0; round < config_.expansion_iterations; ++round) {
    size_t promoted_this_round = 0;
    for (const DsExample& ex : examples) {
      if (!ex.kb_predicate.empty()) continue;
      MappingDecision d =
          mapper->Map(ex.raw_phrase, ex.subject_type, ex.object_type);
      if (d.mapped && d.score >= config_.promote_threshold) {
        mapper->AddEvidence(d.predicate, ex.raw_phrase,
                            config_.promoted_weight);
        ++promoted_this_round;
      }
    }
    result.promoted += promoted_this_round;
    if (promoted_this_round == 0) break;
  }
  return result;
}

}  // namespace nous
