#include "topic/doc_term.h"

#include <cmath>

namespace nous {

VertexCorpus BuildVertexCorpus(const PropertyGraph& graph,
                               size_t max_repeat) {
  VertexCorpus corpus;
  corpus.vocab_size = graph.terms().size();
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto& bag = graph.VertexBag(v);
    if (bag.empty()) continue;
    std::vector<uint32_t> doc;
    for (const auto& [term, weight] : bag) {
      size_t repeat = static_cast<size_t>(std::ceil(weight));
      if (repeat > max_repeat) repeat = max_repeat;
      for (size_t r = 0; r < repeat; ++r) doc.push_back(term);
    }
    if (doc.empty()) continue;
    corpus.docs.push_back(std::move(doc));
    corpus.vertices.push_back(v);
  }
  return corpus;
}

VertexTopicAssignments FitVertexTopics(const PropertyGraph& graph,
                                       const LdaConfig& config) {
  VertexCorpus corpus = BuildVertexCorpus(graph);
  VertexTopicAssignments out{LdaModel(config), {}, {}};
  if (!corpus.docs.empty() && corpus.vocab_size > 0) {
    out.model.Fit(corpus.docs, corpus.vocab_size);
    out.vertices = std::move(corpus.vertices);
    out.topics.reserve(out.vertices.size());
    for (size_t d = 0; d < out.vertices.size(); ++d) {
      out.topics.push_back(out.model.DocumentTopics(d));
    }
  }
  return out;
}

}  // namespace nous
