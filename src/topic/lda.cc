#include "topic/lda.h"

#include <cmath>

#include "common/logging.h"

namespace nous {

LdaModel::LdaModel(LdaConfig config) : config_(config) {
  NOUS_CHECK(config_.num_topics > 0);
}

void LdaModel::Fit(const std::vector<std::vector<uint32_t>>& docs,
                   size_t vocab_size) {
  const size_t K = config_.num_topics;
  vocab_size_ = vocab_size;
  doc_topic_.assign(docs.size(), std::vector<uint32_t>(K, 0));
  topic_term_.assign(K * vocab_size, 0);
  topic_total_.assign(K, 0);
  doc_len_.assign(docs.size(), 0);

  Rng rng(config_.seed);
  // Token-level topic assignments, stored per document.
  std::vector<std::vector<uint8_t>> z(docs.size());
  for (size_t d = 0; d < docs.size(); ++d) {
    z[d].resize(docs[d].size());
    doc_len_[d] = static_cast<uint32_t>(docs[d].size());
    for (size_t i = 0; i < docs[d].size(); ++i) {
      uint32_t w = docs[d][i];
      NOUS_CHECK(w < vocab_size) << "term id out of vocabulary";
      uint8_t k = static_cast<uint8_t>(rng.UniformInt(K));
      z[d][i] = k;
      ++doc_topic_[d][k];
      ++topic_term_[k * vocab_size + w];
      ++topic_total_[k];
    }
  }

  const double alpha = config_.alpha;
  const double beta = config_.beta;
  const double v_beta = beta * static_cast<double>(vocab_size);
  std::vector<double> probs(K);
  for (size_t iter = 0; iter < config_.iterations; ++iter) {
    for (size_t d = 0; d < docs.size(); ++d) {
      for (size_t i = 0; i < docs[d].size(); ++i) {
        const uint32_t w = docs[d][i];
        const uint8_t old_k = z[d][i];
        --doc_topic_[d][old_k];
        --topic_term_[old_k * vocab_size + w];
        --topic_total_[old_k];
        for (size_t k = 0; k < K; ++k) {
          probs[k] = (doc_topic_[d][k] + alpha) *
                     (topic_term_[k * vocab_size + w] + beta) /
                     (topic_total_[k] + v_beta);
        }
        uint8_t new_k = static_cast<uint8_t>(rng.Categorical(probs));
        z[d][i] = new_k;
        ++doc_topic_[d][new_k];
        ++topic_term_[new_k * vocab_size + w];
        ++topic_total_[new_k];
      }
    }
  }
}

std::vector<double> LdaModel::DocumentTopics(size_t doc) const {
  const size_t K = config_.num_topics;
  std::vector<double> theta(K, 0);
  if (doc >= doc_topic_.size()) return theta;
  const double denom =
      static_cast<double>(doc_len_[doc]) + config_.alpha * K;
  for (size_t k = 0; k < K; ++k) {
    theta[k] = (doc_topic_[doc][k] + config_.alpha) / denom;
  }
  return theta;
}

std::vector<double> LdaModel::TopicTerms(size_t topic) const {
  std::vector<double> phi(vocab_size_, 0);
  if (topic >= config_.num_topics) return phi;
  const double denom = static_cast<double>(topic_total_[topic]) +
                       config_.beta * static_cast<double>(vocab_size_);
  for (size_t w = 0; w < vocab_size_; ++w) {
    phi[w] = (topic_term_[topic * vocab_size_ + w] + config_.beta) / denom;
  }
  return phi;
}

std::vector<double> LdaModel::Infer(const std::vector<uint32_t>& doc,
                                    size_t iterations) const {
  const size_t K = config_.num_topics;
  std::vector<double> theta(K, 1.0 / static_cast<double>(K));
  if (doc.empty() || vocab_size_ == 0) return theta;
  Rng rng(config_.seed ^ 0xABCDEF);
  std::vector<uint8_t> z(doc.size());
  std::vector<uint32_t> local_dk(K, 0);
  for (size_t i = 0; i < doc.size(); ++i) {
    uint8_t k = static_cast<uint8_t>(rng.UniformInt(K));
    z[i] = k;
    ++local_dk[k];
  }
  const double alpha = config_.alpha;
  const double beta = config_.beta;
  const double v_beta = beta * static_cast<double>(vocab_size_);
  std::vector<double> probs(K);
  for (size_t iter = 0; iter < iterations; ++iter) {
    for (size_t i = 0; i < doc.size(); ++i) {
      uint32_t w = doc[i] < vocab_size_ ? doc[i] : 0;
      --local_dk[z[i]];
      for (size_t k = 0; k < K; ++k) {
        probs[k] = (local_dk[k] + alpha) *
                   (topic_term_[k * vocab_size_ + w] + beta) /
                   (topic_total_[k] + v_beta);
      }
      z[i] = static_cast<uint8_t>(rng.Categorical(probs));
      ++local_dk[z[i]];
    }
  }
  const double denom = static_cast<double>(doc.size()) + alpha * K;
  for (size_t k = 0; k < K; ++k) {
    theta[k] = (local_dk[k] + alpha) / denom;
  }
  return theta;
}

}  // namespace nous
