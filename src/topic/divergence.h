#ifndef NOUS_TOPIC_DIVERGENCE_H_
#define NOUS_TOPIC_DIVERGENCE_H_

#include <vector>

namespace nous {

/// Kullback–Leibler divergence KL(p || q) in nats. Inputs are treated
/// as distributions; zero q entries are smoothed. Sizes must match.
double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q);

/// Jensen–Shannon divergence — symmetric, bounded by ln 2. The "topic
/// divergence" used by the coherent path search (§3.6); empty inputs
/// (vertices without topics) score maximally divergent.
double JsDivergence(const std::vector<double>& p,
                    const std::vector<double>& q);

}  // namespace nous

#endif  // NOUS_TOPIC_DIVERGENCE_H_
