#ifndef NOUS_TOPIC_LDA_H_
#define NOUS_TOPIC_LDA_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace nous {

struct LdaConfig {
  size_t num_topics = 10;
  /// Dirichlet hyperparameters: document-topic (alpha), topic-term
  /// (beta).
  double alpha = 0.1;
  double beta = 0.01;
  size_t iterations = 200;
  uint64_t seed = 41;
};

/// Latent Dirichlet Allocation fit by collapsed Gibbs sampling (§3.6):
/// NOUS runs LDA over the per-entity "document-term" matrix and assigns
/// each KG vertex its document-topic distribution, which the coherent
/// path search then compares.
class LdaModel {
 public:
  explicit LdaModel(LdaConfig config = {});

  /// Fits on `docs` (each a sequence of term ids < vocab_size).
  /// Re-fitting replaces the previous state.
  void Fit(const std::vector<std::vector<uint32_t>>& docs,
           size_t vocab_size);

  /// Smoothed document-topic distribution theta_d for a training doc.
  std::vector<double> DocumentTopics(size_t doc) const;

  /// Smoothed topic-term distribution phi_k.
  std::vector<double> TopicTerms(size_t topic) const;

  /// Folds in an unseen document against the fitted topics (phi held
  /// fixed) and returns its topic distribution.
  std::vector<double> Infer(const std::vector<uint32_t>& doc,
                            size_t iterations = 20) const;

  size_t num_topics() const { return config_.num_topics; }
  size_t vocab_size() const { return vocab_size_; }
  size_t num_docs() const { return doc_topic_.size(); }

 private:
  LdaConfig config_;
  size_t vocab_size_ = 0;
  /// Per-document topic counts n_dk (row per doc).
  std::vector<std::vector<uint32_t>> doc_topic_;
  /// Topic-term counts n_kw, row-major [topic][term].
  std::vector<uint32_t> topic_term_;
  /// Per-topic totals n_k.
  std::vector<uint32_t> topic_total_;
  /// Document lengths.
  std::vector<uint32_t> doc_len_;
};

}  // namespace nous

#endif  // NOUS_TOPIC_LDA_H_
