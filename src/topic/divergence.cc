#include "topic/divergence.h"

#include <cmath>

namespace nous {

namespace {
constexpr double kLn2 = 0.6931471805599453;
constexpr double kEps = 1e-12;
}  // namespace

double KlDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  if (p.size() != q.size() || p.empty()) return kLn2;
  double kl = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= kEps) continue;
    kl += p[i] * std::log(p[i] / std::max(q[i], kEps));
  }
  return kl;
}

double JsDivergence(const std::vector<double>& p,
                    const std::vector<double>& q) {
  if (p.size() != q.size() || p.empty()) return kLn2;
  double js = 0;
  for (size_t i = 0; i < p.size(); ++i) {
    double m = 0.5 * (p[i] + q[i]);
    if (p[i] > kEps) js += 0.5 * p[i] * std::log(p[i] / std::max(m, kEps));
    if (q[i] > kEps) js += 0.5 * q[i] * std::log(q[i] / std::max(m, kEps));
  }
  return js;
}

}  // namespace nous
