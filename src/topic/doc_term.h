#ifndef NOUS_TOPIC_DOC_TERM_H_
#define NOUS_TOPIC_DOC_TERM_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"
#include "topic/lda.h"

namespace nous {

/// Per-vertex "documents" built from KG vertex bags — the
/// document-term matrix NOUS runs LDA on (§3.6). Vertices with empty
/// bags are excluded.
struct VertexCorpus {
  std::vector<std::vector<uint32_t>> docs;
  std::vector<VertexId> vertices;  // docs[i] belongs to vertices[i]
  size_t vocab_size = 0;
};

/// Expands each vertex's weighted bag into a token sequence (weights
/// rounded up to repetition counts, capped at `max_repeat`).
VertexCorpus BuildVertexCorpus(const PropertyGraph& graph,
                               size_t max_repeat = 8);

/// Fits LDA on the vertex corpus and writes each vertex's topic
/// distribution back into the graph (SetVertexTopics). Returns the
/// fitted model for later Infer calls on unseen entities.
LdaModel AssignVertexTopics(PropertyGraph* graph, const LdaConfig& config);

}  // namespace nous

#endif  // NOUS_TOPIC_DOC_TERM_H_
