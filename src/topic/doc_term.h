#ifndef NOUS_TOPIC_DOC_TERM_H_
#define NOUS_TOPIC_DOC_TERM_H_

#include <cstdint>
#include <vector>

#include "graph/property_graph.h"
#include "topic/lda.h"

namespace nous {

/// Per-vertex "documents" built from KG vertex bags — the
/// document-term matrix NOUS runs LDA on (§3.6). Vertices with empty
/// bags are excluded.
struct VertexCorpus {
  std::vector<std::vector<uint32_t>> docs;
  std::vector<VertexId> vertices;  // docs[i] belongs to vertices[i]
  size_t vocab_size = 0;
};

/// Expands each vertex's weighted bag into a token sequence (weights
/// rounded up to repetition counts, capped at `max_repeat`).
VertexCorpus BuildVertexCorpus(const PropertyGraph& graph,
                               size_t max_repeat = 8);

/// A fitted LDA model plus the per-vertex distributions it assigns.
/// Pure output: applying `topics[i]` to `vertices[i]` (SetVertexTopics)
/// is the caller's job — KG mutation stays inside the pipeline /
/// durability / graph funnel (nous-layering, DESIGN.md §5.14), so
/// src/topic never writes to a graph.
struct VertexTopicAssignments {
  LdaModel model;
  std::vector<VertexId> vertices;
  std::vector<std::vector<double>> topics;  // topics[i] for vertices[i]
};

/// Fits LDA on the vertex corpus and returns the model together with
/// each corpus vertex's topic distribution. Does not touch `graph`.
VertexTopicAssignments FitVertexTopics(const PropertyGraph& graph,
                                       const LdaConfig& config);

}  // namespace nous

#endif  // NOUS_TOPIC_DOC_TERM_H_
