#ifndef NOUS_KB_KB_IO_H_
#define NOUS_KB_KB_IO_H_

#include <iostream>
#include <memory>
#include <string>

#include "common/result.h"
#include "kb/curated_kb.h"

namespace nous {

/// Serializes a curated KB (ontology included) to a line-oriented,
/// tab-separated text format, so custom domains can be authored by
/// hand or exported/reimported (demo feature 3: "develop custom
/// quality control modules for a new domain").
///
/// Format:
///   #nous-kb v1
///   O <type> <parent|->
///   P <predicate> <domain|-> <range|->
///   N <name> <type> <PERSON|ORG|LOC|PRODUCT|DATE|MISC> <prior>
///   A <name> <alias>
///   C <name> <term>
///   F <subject> <predicate> <object> <timestamp>
Status SaveCuratedKb(const CuratedKb& kb, std::ostream& out);

Result<std::unique_ptr<CuratedKb>> LoadCuratedKb(std::istream& in);

Status SaveCuratedKbToFile(const CuratedKb& kb, const std::string& path);
Result<std::unique_ptr<CuratedKb>> LoadCuratedKbFromFile(
    const std::string& path);

}  // namespace nous

#endif  // NOUS_KB_KB_IO_H_
