#include "kb/kb_generator.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace nous {

CuratedKb BuildCuratedKb(const WorldModel& world, const Ontology& ontology,
                         const KbCoverage& coverage) {
  Rng rng(coverage.seed);
  CuratedKb kb(ontology);

  // Popularity = fact participation count in the full world.
  std::vector<size_t> popularity(world.entities().size(), 0);
  for (const WorldFact& f : world.facts()) {
    ++popularity[f.subject];
    ++popularity[f.object];
  }

  // Keep the most popular entities first so the curated KB looks like a
  // real one (famous entities are curated); fill the coverage quota by
  // popularity rank with random tie-breaking.
  std::vector<size_t> order(world.entities().size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return popularity[a] > popularity[b];
  });
  size_t quota = static_cast<size_t>(
      coverage.entity_coverage *
      static_cast<double>(world.entities().size()));

  std::unordered_map<size_t, size_t> world_to_kb;
  for (size_t rank = 0; rank < quota && rank < order.size(); ++rank) {
    size_t w = order[rank];
    const WorldEntity& we = world.entity(w);
    KbEntity e;
    e.name = we.name;
    e.aliases = we.aliases;
    e.type_name = we.type_name;
    e.ner_type = we.ner_type;
    e.context_terms = we.description;
    e.prior = coverage.flat_priors
                  ? 1.0
                  : 1.0 + static_cast<double>(popularity[w]);
    world_to_kb[w] = kb.AddEntity(std::move(e));
  }

  // Curate static facts between covered endpoints.
  for (const WorldFact& f : world.facts()) {
    if (f.is_event) continue;
    auto s = world_to_kb.find(f.subject);
    auto o = world_to_kb.find(f.object);
    if (s == world_to_kb.end() || o == world_to_kb.end()) continue;
    if (!rng.Bernoulli(coverage.fact_coverage)) continue;
    kb.AddFact(s->second, f.predicate, o->second, f.date.ToDayNumber());
  }
  return kb;
}

}  // namespace nous
