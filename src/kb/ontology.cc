#include "kb/ontology.h"

namespace nous {

void Ontology::AddType(std::string_view type, std::string_view parent) {
  parent_[std::string(type)] = std::string(parent);
}

bool Ontology::HasType(std::string_view type) const {
  return parent_.count(std::string(type)) > 0;
}

bool Ontology::IsSubtypeOf(std::string_view type,
                           std::string_view ancestor) const {
  std::string current(type);
  // Bounded walk to guard against accidental cycles.
  for (int depth = 0; depth < 32; ++depth) {
    if (current == ancestor) return true;
    auto it = parent_.find(current);
    if (it == parent_.end() || it->second.empty()) return false;
    current = it->second;
  }
  return false;
}

std::string Ontology::ParentOf(std::string_view type) const {
  auto it = parent_.find(std::string(type));
  if (it == parent_.end()) return "";
  return it->second;
}

void Ontology::AddPredicate(PredicateSchema schema) {
  predicate_index_[schema.name] = predicates_.size();
  predicates_.push_back(std::move(schema));
}

std::optional<PredicateSchema> Ontology::FindPredicate(
    std::string_view name) const {
  auto it = predicate_index_.find(std::string(name));
  if (it == predicate_index_.end()) return std::nullopt;
  return predicates_[it->second];
}

bool Ontology::SignatureMatches(std::string_view predicate,
                                std::string_view subject_type,
                                std::string_view object_type) const {
  auto schema = FindPredicate(predicate);
  if (!schema.has_value()) return false;
  if (!schema->domain_type.empty() &&
      !IsSubtypeOf(subject_type, schema->domain_type)) {
    return false;
  }
  if (!schema->range_type.empty() &&
      !IsSubtypeOf(object_type, schema->range_type)) {
    return false;
  }
  return true;
}

std::vector<std::string> Ontology::TypeNames() const {
  std::vector<std::string> names;
  names.reserve(parent_.size());
  for (const auto& [name, parent] : parent_) names.push_back(name);
  return names;
}

Ontology Ontology::DroneDefault() {
  Ontology o;
  o.AddType("thing", "");
  o.AddType("organization", "thing");
  o.AddType("company", "organization");
  o.AddType("agency", "organization");
  o.AddType("venue", "organization");
  o.AddType("person", "thing");
  o.AddType("location", "thing");
  o.AddType("city", "location");
  o.AddType("product", "thing");
  o.AddType("drone_model", "product");
  o.AddType("paper", "thing");
  o.AddType("resource", "thing");

  o.AddPredicate({"acquired", "company", "company"});
  o.AddPredicate({"partneredWith", "organization", "organization"});
  o.AddPredicate({"investsIn", "organization", "organization"});
  o.AddPredicate({"launched", "organization", "product"});
  o.AddPredicate({"uses", "organization", "product"});
  o.AddPredicate({"competesWith", "company", "company"});
  o.AddPredicate({"regulates", "agency", "organization"});
  o.AddPredicate({"ceoOf", "person", "organization"});
  o.AddPredicate({"worksFor", "person", "organization"});
  o.AddPredicate({"manufactures", "organization", "product"});
  o.AddPredicate({"headquarteredIn", "organization", "city"});
  o.AddPredicate({"authored", "person", "paper"});
  o.AddPredicate({"cites", "paper", "paper"});
  o.AddPredicate({"publishedIn", "paper", "venue"});
  o.AddPredicate({"accessed", "person", "resource"});
  o.AddPredicate({"downloaded", "person", "resource"});
  o.AddPredicate({"emailed", "person", "resource"});
  return o;
}

}  // namespace nous
