#ifndef NOUS_KB_CURATED_KB_H_
#define NOUS_KB_CURATED_KB_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "graph/types.h"
#include "kb/ontology.h"
#include "text/ner.h"

namespace nous {

/// Curated entity record, YAGO-style: canonical name, aliases, ontology
/// type, Wikipedia-like bag of words (the linker's entity context), and
/// a popularity prior for candidate ranking.
struct KbEntity {
  std::string name;
  std::vector<std::string> aliases;
  std::string type_name;
  EntityType ner_type = EntityType::kMisc;
  std::vector<std::string> context_terms;
  double prior = 1.0;
};

/// A curated fact with full provenance.
struct KbFact {
  size_t subject = 0;  // index into entities()
  size_t object = 0;
  std::string predicate;
  Timestamp timestamp = 0;
};

/// In-memory curated knowledge base (the YAGO2 substitute): entity
/// catalog with alias index and high-confidence facts. NOUS fuses this
/// with stream-extracted knowledge (§3.3).
class CuratedKb {
 public:
  explicit CuratedKb(Ontology ontology) : ontology_(std::move(ontology)) {}

  size_t AddEntity(KbEntity entity);
  void AddFact(size_t subject, std::string_view predicate, size_t object,
               Timestamp timestamp);

  const std::vector<KbEntity>& entities() const { return entities_; }
  const std::vector<KbFact>& facts() const { return facts_; }
  const Ontology& ontology() const { return ontology_; }

  std::optional<size_t> FindByName(std::string_view name) const;

  /// Entities whose canonical name or any alias equals `surface`
  /// (case-insensitive). Multiple hits = ambiguity the linker resolves.
  std::vector<size_t> Candidates(std::string_view surface) const;

  /// Every surface form (canonical + aliases) for NER gazetteer seeding.
  std::vector<std::pair<std::string, EntityType>> AllSurfaceForms() const;

 private:
  Ontology ontology_;
  std::vector<KbEntity> entities_;
  std::vector<KbFact> facts_;
  std::unordered_map<std::string, size_t> by_name_;
  std::unordered_map<std::string, std::vector<size_t>> by_surface_;
};

}  // namespace nous

#endif  // NOUS_KB_CURATED_KB_H_
