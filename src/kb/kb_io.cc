#include "kb/kb_io.h"

#include <cstdlib>
#include <fstream>
#include <unordered_map>

#include "common/string_util.h"

namespace nous {

namespace {

constexpr char kHeader[] = "#nous-kb v1";

bool FieldSafe(const std::string& text) {
  return !text.empty() && text.find('\t') == std::string::npos &&
         text.find('\n') == std::string::npos;
}

std::optional<EntityType> ParseEntityType(const std::string& name) {
  for (EntityType t : {EntityType::kPerson, EntityType::kOrganization,
                       EntityType::kLocation, EntityType::kProduct,
                       EntityType::kDate, EntityType::kMisc}) {
    if (name == EntityTypeName(t)) return t;
  }
  return std::nullopt;
}

}  // namespace

Status SaveCuratedKb(const CuratedKb& kb, std::ostream& out) {
  out << kHeader << "\n";
  const Ontology& ontology = kb.ontology();
  for (const std::string& type : ontology.TypeNames()) {
    std::string parent = ontology.ParentOf(type);
    out << "O\t" << type << "\t" << (parent.empty() ? "-" : parent)
        << "\n";
  }
  for (const PredicateSchema& schema : ontology.predicates()) {
    out << "P\t" << schema.name << "\t"
        << (schema.domain_type.empty() ? "-" : schema.domain_type)
        << "\t"
        << (schema.range_type.empty() ? "-" : schema.range_type) << "\n";
  }
  for (const KbEntity& e : kb.entities()) {
    if (!FieldSafe(e.name) || !FieldSafe(e.type_name)) {
      return Status::InvalidArgument("entity field contains tab: " +
                                     e.name);
    }
    out << "N\t" << e.name << "\t" << e.type_name << "\t"
        << EntityTypeName(e.ner_type) << "\t"
        << StrFormat("%.17g", e.prior) << "\n";
    for (const std::string& alias : e.aliases) {
      if (!FieldSafe(alias)) {
        return Status::InvalidArgument("alias contains tab");
      }
      out << "A\t" << e.name << "\t" << alias << "\n";
    }
    for (const std::string& term : e.context_terms) {
      if (!FieldSafe(term)) {
        return Status::InvalidArgument("term contains tab");
      }
      out << "C\t" << e.name << "\t" << term << "\n";
    }
  }
  for (const KbFact& f : kb.facts()) {
    out << "F\t" << kb.entities()[f.subject].name << "\t" << f.predicate
        << "\t" << kb.entities()[f.object].name << "\t" << f.timestamp
        << "\n";
  }
  if (!out.good()) return Status::Internal("stream write failure");
  return Status::Ok();
}

Result<std::unique_ptr<CuratedKb>> LoadCuratedKb(std::istream& in) {
  std::string line;
  size_t line_no = 0;
  auto fail = [&line_no](const std::string& why) {
    return Status::InvalidArgument(
        StrFormat("line %zu: %s", line_no, why.c_str()));
  };
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("missing #nous-kb v1 header");
  }
  ++line_no;
  // First pass over records builds the ontology, then entities, then
  // aliases/terms/facts; the format guarantees N precedes its A/C and
  // F references only declared entities.
  Ontology ontology;
  // Entity construction is two-phase: collect, then add, because
  // aliases and terms mutate KbEntity before AddEntity indexes it.
  std::unordered_map<std::string, KbEntity> staged;
  std::vector<std::string> staged_order;
  struct StagedFact {
    std::string subject, predicate, object;
    Timestamp timestamp;
  };
  std::vector<StagedFact> staged_facts;

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> f = Split(line, '\t');
    const std::string& kind = f[0];
    if (kind == "O") {
      if (f.size() != 3) return fail("O needs 3 fields");
      ontology.AddType(f[1], f[2] == "-" ? "" : f[2]);
    } else if (kind == "P") {
      if (f.size() != 4) return fail("P needs 4 fields");
      ontology.AddPredicate(PredicateSchema{
          f[1], f[2] == "-" ? "" : f[2], f[3] == "-" ? "" : f[3]});
    } else if (kind == "N") {
      if (f.size() != 5) return fail("N needs 5 fields");
      auto ner = ParseEntityType(f[3]);
      if (!ner.has_value()) return fail("bad NER type " + f[3]);
      char* end = nullptr;
      double prior = std::strtod(f[4].c_str(), &end);
      if (end == f[4].c_str()) return fail("bad prior");
      KbEntity entity;
      entity.name = f[1];
      entity.type_name = f[2];
      entity.ner_type = *ner;
      entity.prior = prior;
      if (staged.count(entity.name) > 0) {
        return fail("duplicate entity " + entity.name);
      }
      staged_order.push_back(entity.name);
      staged.emplace(f[1], std::move(entity));
    } else if (kind == "A") {
      if (f.size() != 3) return fail("A needs 3 fields");
      auto it = staged.find(f[1]);
      if (it == staged.end()) return fail("A references unknown entity");
      it->second.aliases.push_back(f[2]);
    } else if (kind == "C") {
      if (f.size() != 3) return fail("C needs 3 fields");
      auto it = staged.find(f[1]);
      if (it == staged.end()) return fail("C references unknown entity");
      it->second.context_terms.push_back(f[2]);
    } else if (kind == "F") {
      if (f.size() != 5) return fail("F needs 5 fields");
      char* end = nullptr;
      Timestamp ts = static_cast<Timestamp>(
          std::strtoll(f[4].c_str(), &end, 10));
      if (end == f[4].c_str()) return fail("bad timestamp");
      staged_facts.push_back(StagedFact{f[1], f[2], f[3], ts});
    } else {
      return fail("unknown record kind '" + kind + "'");
    }
  }

  auto kb = std::make_unique<CuratedKb>(std::move(ontology));
  for (const std::string& name : staged_order) {
    kb->AddEntity(std::move(staged.at(name)));
  }
  for (const StagedFact& fact : staged_facts) {
    auto s = kb->FindByName(fact.subject);
    auto o = kb->FindByName(fact.object);
    if (!s.has_value() || !o.has_value()) {
      return Status::InvalidArgument("fact references unknown entity " +
                                     fact.subject + "/" + fact.object);
    }
    kb->AddFact(*s, fact.predicate, *o, fact.timestamp);
  }
  return kb;
}

Status SaveCuratedKbToFile(const CuratedKb& kb, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::NotFound("cannot open for write: " + path);
  }
  return SaveCuratedKb(kb, out);
}

Result<std::unique_ptr<CuratedKb>> LoadCuratedKbFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open for read: " + path);
  }
  return LoadCuratedKb(in);
}

}  // namespace nous
