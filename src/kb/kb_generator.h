#ifndef NOUS_KB_KB_GENERATOR_H_
#define NOUS_KB_KB_GENERATOR_H_

#include <cstdint>

#include "corpus/world_model.h"
#include "kb/curated_kb.h"

namespace nous {

/// Controls how much of the ground-truth world the curated KB covers.
/// Partial coverage is the point: extraction must add what curation
/// lacks, and linking must connect them (§3.3).
struct KbCoverage {
  /// Fraction of world entities present in the curated KB.
  double entity_coverage = 0.6;
  /// Fraction of static (non-event) facts present, among facts whose
  /// endpoints are both covered.
  double fact_coverage = 0.8;
  /// When true, every curated entity gets prior 1.0 — modeling a
  /// fresh custom domain with no popularity statistics, where
  /// disambiguation must come from context (the paper's target
  /// setting).
  bool flat_priors = false;
  uint64_t seed = 5;
};

/// Snapshots a partial view of `world` as a curated KB. Entities keep
/// their aliases and description bags; popularity priors are assigned
/// by fact participation so frequent entities rank higher as linking
/// candidates.
CuratedKb BuildCuratedKb(const WorldModel& world, const Ontology& ontology,
                         const KbCoverage& coverage);

}  // namespace nous

#endif  // NOUS_KB_KB_GENERATOR_H_
