#ifndef NOUS_KB_ONTOLOGY_H_
#define NOUS_KB_ONTOLOGY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace nous {

/// Schema of one target-ontology predicate: name plus domain/range type
/// constraints used by the distant-supervision mapper (§3.3).
struct PredicateSchema {
  std::string name;
  std::string domain_type;  // required subject type ("" = any)
  std::string range_type;   // required object type ("" = any)
};

/// Type taxonomy plus predicate schema — the target ontology raw
/// triples are mapped onto. Types form a forest via parent links.
class Ontology {
 public:
  Ontology() = default;

  /// Drone-domain default: the taxonomy and predicates the drone world
  /// model uses, rooted at "thing".
  static Ontology DroneDefault();

  /// Adds `type` under `parent` ("" for a root). Re-adding an existing
  /// type updates its parent.
  void AddType(std::string_view type, std::string_view parent);
  bool HasType(std::string_view type) const;

  /// True when `type` equals `ancestor` or descends from it.
  bool IsSubtypeOf(std::string_view type, std::string_view ancestor) const;

  /// Parent of `type`, or empty when root/unknown.
  std::string ParentOf(std::string_view type) const;

  void AddPredicate(PredicateSchema schema);
  std::optional<PredicateSchema> FindPredicate(std::string_view name) const;
  const std::vector<PredicateSchema>& predicates() const {
    return predicates_;
  }

  /// Checks a (subject_type, predicate, object_type) assignment against
  /// the schema, honoring subtype relations.
  bool SignatureMatches(std::string_view predicate,
                        std::string_view subject_type,
                        std::string_view object_type) const;

  std::vector<std::string> TypeNames() const;

 private:
  std::unordered_map<std::string, std::string> parent_;
  std::vector<PredicateSchema> predicates_;
  std::unordered_map<std::string, size_t> predicate_index_;
};

}  // namespace nous

#endif  // NOUS_KB_ONTOLOGY_H_
