#include "kb/curated_kb.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace nous {

size_t CuratedKb::AddEntity(KbEntity entity) {
  size_t id = entities_.size();
  by_name_[entity.name] = id;
  by_surface_[ToLower(entity.name)].push_back(id);
  for (const std::string& alias : entity.aliases) {
    by_surface_[ToLower(alias)].push_back(id);
  }
  entities_.push_back(std::move(entity));
  return id;
}

void CuratedKb::AddFact(size_t subject, std::string_view predicate,
                        size_t object, Timestamp timestamp) {
  NOUS_CHECK(subject < entities_.size());
  NOUS_CHECK(object < entities_.size());
  KbFact fact;
  fact.subject = subject;
  fact.object = object;
  fact.predicate = std::string(predicate);
  fact.timestamp = timestamp;
  facts_.push_back(std::move(fact));
}

std::optional<size_t> CuratedKb::FindByName(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<size_t> CuratedKb::Candidates(std::string_view surface) const {
  auto it = by_surface_.find(ToLower(surface));
  if (it == by_surface_.end()) return {};
  return it->second;
}

std::vector<std::pair<std::string, EntityType>> CuratedKb::AllSurfaceForms()
    const {
  std::vector<std::pair<std::string, EntityType>> forms;
  for (const KbEntity& e : entities_) {
    forms.emplace_back(e.name, e.ner_type);
    for (const std::string& alias : e.aliases) {
      forms.emplace_back(alias, e.ner_type);
    }
  }
  return forms;
}

}  // namespace nous
