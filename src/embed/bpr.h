#ifndef NOUS_EMBED_BPR_H_
#define NOUS_EMBED_BPR_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "embed/link_predictor.h"

namespace nous {

struct BprConfig {
  size_t latent_dim = 16;
  double learning_rate = 0.05;
  double regularization = 0.01;
  size_t epochs = 30;
  /// Negative objects sampled per positive per epoch.
  size_t negatives_per_positive = 1;
  uint64_t seed = 31;
};

/// Latent-feature link prediction trained with the Bayesian
/// Personalized Ranking criterion (§3.4, following Zhang et al. [16]):
/// score(s,p,o) = sigmoid(u_s . (w_p ⊙ v_o) + b_p), with shared entity
/// embeddings and a per-predicate diagonal interaction. Training
/// optimizes ln sigmoid(x_pos − x_neg) by SGD over (positive, sampled
/// negative-object) pairs. Supports incremental refresh as the dynamic
/// KG grows.
class BprModel : public LinkPredictor {
 public:
  explicit BprModel(BprConfig config = {});

  /// Full training pass over a snapshot. Grows parameter tables to
  /// `num_entities` / `num_predicates` as needed (never shrinks).
  void Train(const std::vector<IdTriple>& triples, size_t num_entities,
             size_t num_predicates);

  /// Continues training for `epochs` passes over `new_triples` —
  /// the dynamic-KG refresh path. New ids are grown on demand.
  void TrainIncremental(const std::vector<IdTriple>& new_triples,
                        size_t num_entities, size_t num_predicates,
                        size_t epochs);

  /// Calibrated confidence in (0, 1).
  double Score(uint32_t subject, uint32_t predicate,
               uint32_t object) const override;

  std::string name() const override { return "bpr"; }

  /// Mean BPR loss over a sample of the training set (diagnostics).
  double EstimateLoss(const std::vector<IdTriple>& triples,
                      size_t max_samples = 2000) const;

  size_t num_entities() const { return num_entities_; }
  const BprConfig& config() const { return config_; }

 private:
  void EnsureCapacity(size_t num_entities, size_t num_predicates);
  void RunEpochs(const std::vector<IdTriple>& triples, size_t epochs);
  double RawScore(uint32_t s, uint32_t p, uint32_t o) const;
  void SgdStep(uint32_t s, uint32_t p, uint32_t o_pos, uint32_t o_neg);

  BprConfig config_;
  Rng rng_;
  size_t num_entities_ = 0;
  size_t num_predicates_ = 0;
  /// Row-major [entity][dim] subject and object tables.
  std::vector<double> subject_emb_;
  std::vector<double> object_emb_;
  /// Row-major [predicate][dim] diagonal interaction weights.
  std::vector<double> predicate_diag_;
  std::vector<double> predicate_bias_;
};

}  // namespace nous

#endif  // NOUS_EMBED_BPR_H_
