#ifndef NOUS_EMBED_BPR_H_
#define NOUS_EMBED_BPR_H_

#include <cstddef>
#include <vector>

#include "common/binary_io.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "embed/link_predictor.h"

namespace nous {

struct BprConfig {
  size_t latent_dim = 16;
  double learning_rate = 0.05;
  double regularization = 0.01;
  size_t epochs = 30;
  /// Negative objects sampled per positive per epoch.
  size_t negatives_per_positive = 1;
  uint64_t seed = 31;
  /// SGD scheduling. 0 = classic sequential SGD (every update sees all
  /// preceding ones — the seed behavior). >0 = deterministic block
  /// SGD: gradients for `sgd_block` consecutive samples are computed
  /// against parameters frozen at the block start (in parallel when a
  /// pool is attached via set_pool), then applied in sample order.
  /// The result is bit-identical for any pool size including none —
  /// only the block size changes the trained model, never the thread
  /// count. See DESIGN.md "Threading model" for why this was chosen
  /// over hogwild.
  size_t sgd_block = 0;
};

/// Latent-feature link prediction trained with the Bayesian
/// Personalized Ranking criterion (§3.4, following Zhang et al. [16]):
/// score(s,p,o) = sigmoid(u_s . (w_p ⊙ v_o) + b_p), with shared entity
/// embeddings and a per-predicate diagonal interaction. Training
/// optimizes ln sigmoid(x_pos − x_neg) by SGD over (positive, sampled
/// negative-object) pairs. Supports incremental refresh as the dynamic
/// KG grows, and block-deterministic parallel refresh across a
/// ThreadPool (BprConfig::sgd_block).
class BprModel : public LinkPredictor {
 public:
  explicit BprModel(BprConfig config = {});

  /// Attaches a worker pool used to parallelize block SGD (only
  /// meaningful with config.sgd_block > 0). Not owned; pass null to
  /// detach. The trained model does not depend on the pool.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Full training pass over a snapshot. Grows parameter tables to
  /// `num_entities` / `num_predicates` as needed (never shrinks).
  void Train(const std::vector<IdTriple>& triples, size_t num_entities,
             size_t num_predicates);

  /// Continues training for `epochs` passes over `new_triples` —
  /// the dynamic-KG refresh path. New ids are grown on demand.
  void TrainIncremental(const std::vector<IdTriple>& new_triples,
                        size_t num_entities, size_t num_predicates,
                        size_t epochs);

  /// Calibrated confidence in (0, 1).
  double Score(uint32_t subject, uint32_t predicate,
               uint32_t object) const override;

  std::string name() const override { return "bpr"; }

  /// Mean BPR loss over a sample of the training set (diagnostics).
  double EstimateLoss(const std::vector<IdTriple>& triples,
                      size_t max_samples = 2000) const;

  size_t num_entities() const { return num_entities_; }
  const BprConfig& config() const { return config_; }

  /// Checkpoint serialization: parameter tables bit-exact plus the
  /// RNG state, so a restored model continues the exact same SGD
  /// trajectory (negative sampling included). Config and pool are
  /// reconstructed by the caller and must match the saved dimensions.
  void SaveBinary(BinaryWriter* writer) const;
  Status LoadBinary(BinaryReader* reader);

 private:
  /// One presampled SGD example: (subject, predicate, positive object,
  /// corrupted object).
  struct Sample {
    uint32_t s, p, o_pos, o_neg;
  };

  void EnsureCapacity(size_t num_entities, size_t num_predicates);
  void RunEpochs(const std::vector<IdTriple>& triples, size_t epochs);
  void RunEpochsBlocked(const std::vector<IdTriple>& triples, size_t epochs);
  double RawScore(uint32_t s, uint32_t p, uint32_t o) const;
  void SgdStep(uint32_t s, uint32_t p, uint32_t o_pos, uint32_t o_neg);
  /// Writes the 4 x latent_dim gradient rows (du, dv_pos, dv_neg, dw)
  /// for `sample` into `grad`, reading current parameters only.
  void ComputeGradient(const Sample& sample, double* grad) const;
  void ApplyGradient(const Sample& sample, const double* grad);

  BprConfig config_;
  Rng rng_;
  ThreadPool* pool_ = nullptr;  // not owned
  size_t num_entities_ = 0;
  size_t num_predicates_ = 0;
  /// Row-major [entity][dim] subject and object tables.
  std::vector<double> subject_emb_;
  std::vector<double> object_emb_;
  /// Row-major [predicate][dim] diagonal interaction weights.
  std::vector<double> predicate_diag_;
  std::vector<double> predicate_bias_;
};

}  // namespace nous

#endif  // NOUS_EMBED_BPR_H_
