#include "embed/eval.h"

#include <unordered_set>

#include "common/hash.h"

namespace nous {

namespace {

uint64_t TripleKey(const IdTriple& t) {
  return (static_cast<uint64_t>(t[0]) << 40) ^
         (static_cast<uint64_t>(t[1]) << 20) ^ t[2];
}

}  // namespace

RankingMetrics EvaluateRanking(const LinkPredictor& predictor,
                               const std::vector<IdTriple>& test,
                               const std::vector<IdTriple>& all_known,
                               size_t num_entities,
                               const EvalConfig& config) {
  RankingMetrics metrics;
  if (test.empty() || num_entities < 2) return metrics;
  std::unordered_set<uint64_t> known;
  known.reserve(all_known.size() * 2);
  for (const IdTriple& t : all_known) known.insert(TripleKey(t));

  Rng rng(config.seed);
  double auc_sum = 0, mrr_sum = 0;
  size_t hits = 0;
  for (const IdTriple& t : test) {
    double pos = predictor.Score(t[0], t[1], t[2]);
    size_t wins = 0, ties = 0, rank = 1;
    size_t negatives = 0;
    size_t attempts = 0;
    while (negatives < config.negatives_per_positive &&
           attempts < config.negatives_per_positive * 4) {
      ++attempts;
      uint32_t o_neg =
          static_cast<uint32_t>(rng.UniformInt(num_entities));
      IdTriple corrupted = {t[0], t[1], o_neg};
      if (o_neg == t[2] || known.count(TripleKey(corrupted)) > 0) {
        continue;  // filtered setting
      }
      ++negatives;
      double neg = predictor.Score(t[0], t[1], o_neg);
      if (pos > neg) {
        ++wins;
      } else if (pos == neg) {
        ++ties;
      } else {
        ++rank;
      }
    }
    if (negatives == 0) continue;
    auc_sum += (static_cast<double>(wins) + 0.5 * ties) /
               static_cast<double>(negatives);
    rank += ties / 2;  // mid-rank ties
    mrr_sum += 1.0 / static_cast<double>(rank);
    if (rank <= 10) ++hits;
    ++metrics.evaluated;
  }
  if (metrics.evaluated == 0) return metrics;
  metrics.auc = auc_sum / static_cast<double>(metrics.evaluated);
  metrics.mrr = mrr_sum / static_cast<double>(metrics.evaluated);
  metrics.hits_at_10 =
      static_cast<double>(hits) / static_cast<double>(metrics.evaluated);
  return metrics;
}

void SplitTriples(const std::vector<IdTriple>& triples, double train_frac,
                  uint64_t seed, std::vector<IdTriple>* train,
                  std::vector<IdTriple>* test) {
  std::vector<IdTriple> shuffled = triples;
  Rng rng(seed);
  rng.Shuffle(&shuffled);
  size_t cut = static_cast<size_t>(train_frac *
                                   static_cast<double>(shuffled.size()));
  train->assign(shuffled.begin(), shuffled.begin() + cut);
  test->assign(shuffled.begin() + cut, shuffled.end());
}

}  // namespace nous
