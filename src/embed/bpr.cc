#include "embed/bpr.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace nous {

namespace {

double Sigmoid(double x) {
  if (x >= 0) {
    return 1.0 / (1.0 + std::exp(-x));
  }
  double e = std::exp(x);
  return e / (1.0 + e);
}

}  // namespace

BprModel::BprModel(BprConfig config)
    : config_(config), rng_(config.seed) {}

void BprModel::EnsureCapacity(size_t num_entities, size_t num_predicates) {
  const size_t d = config_.latent_dim;
  if (num_entities > num_entities_) {
    size_t old = subject_emb_.size();
    subject_emb_.resize(num_entities * d);
    object_emb_.resize(num_entities * d);
    const double scale = 1.0 / std::sqrt(static_cast<double>(d));
    for (size_t i = old; i < subject_emb_.size(); ++i) {
      subject_emb_[i] = rng_.Gaussian() * scale;
      object_emb_[i] = rng_.Gaussian() * scale;
    }
    num_entities_ = num_entities;
  }
  if (num_predicates > num_predicates_) {
    size_t old = predicate_diag_.size();
    predicate_diag_.resize(num_predicates * d, 0.0);
    for (size_t i = old; i < predicate_diag_.size(); ++i) {
      predicate_diag_[i] = 1.0 + 0.1 * rng_.Gaussian();
    }
    predicate_bias_.resize(num_predicates, 0.0);
    num_predicates_ = num_predicates;
  }
}

double BprModel::RawScore(uint32_t s, uint32_t p, uint32_t o) const {
  const size_t d = config_.latent_dim;
  const double* u = &subject_emb_[s * d];
  const double* v = &object_emb_[o * d];
  const double* w = &predicate_diag_[p * d];
  double x = predicate_bias_[p];
  for (size_t k = 0; k < d; ++k) x += u[k] * w[k] * v[k];
  return x;
}

double BprModel::Score(uint32_t subject, uint32_t predicate,
                       uint32_t object) const {
  if (subject >= num_entities_ || object >= num_entities_ ||
      predicate >= num_predicates_) {
    return 0.5;  // unseen ids: uninformative prior
  }
  return Sigmoid(RawScore(subject, predicate, object));
}

void BprModel::SgdStep(uint32_t s, uint32_t p, uint32_t o_pos,
                       uint32_t o_neg) {
  const size_t d = config_.latent_dim;
  const double lr = config_.learning_rate;
  const double reg = config_.regularization;
  double* u = &subject_emb_[s * d];
  double* vp = &object_emb_[o_pos * d];
  double* vn = &object_emb_[o_neg * d];
  double* w = &predicate_diag_[p * d];
  const double x_diff = RawScore(s, p, o_pos) - RawScore(s, p, o_neg);
  // d/dx of -ln sigmoid(x) is -(1 - sigmoid(x)).
  const double g = 1.0 - Sigmoid(x_diff);
  for (size_t k = 0; k < d; ++k) {
    const double uk = u[k], vpk = vp[k], vnk = vn[k], wk = w[k];
    u[k] += lr * (g * wk * (vpk - vnk) - reg * uk);
    vp[k] += lr * (g * wk * uk - reg * vpk);
    vn[k] += lr * (-g * wk * uk - reg * vnk);
    w[k] += lr * (g * uk * (vpk - vnk) - reg * wk);
  }
}

void BprModel::ComputeGradient(const Sample& sample, double* grad) const {
  const size_t d = config_.latent_dim;
  const double lr = config_.learning_rate;
  const double reg = config_.regularization;
  const double* u = &subject_emb_[sample.s * d];
  const double* vp = &object_emb_[sample.o_pos * d];
  const double* vn = &object_emb_[sample.o_neg * d];
  const double* w = &predicate_diag_[sample.p * d];
  const double x_diff = RawScore(sample.s, sample.p, sample.o_pos) -
                        RawScore(sample.s, sample.p, sample.o_neg);
  const double g = 1.0 - Sigmoid(x_diff);
  double* du = grad;
  double* dvp = grad + d;
  double* dvn = grad + 2 * d;
  double* dw = grad + 3 * d;
  for (size_t k = 0; k < d; ++k) {
    const double uk = u[k], vpk = vp[k], vnk = vn[k], wk = w[k];
    du[k] = lr * (g * wk * (vpk - vnk) - reg * uk);
    dvp[k] = lr * (g * wk * uk - reg * vpk);
    dvn[k] = lr * (-g * wk * uk - reg * vnk);
    dw[k] = lr * (g * uk * (vpk - vnk) - reg * wk);
  }
}

void BprModel::ApplyGradient(const Sample& sample, const double* grad) {
  const size_t d = config_.latent_dim;
  double* u = &subject_emb_[sample.s * d];
  double* vp = &object_emb_[sample.o_pos * d];
  double* vn = &object_emb_[sample.o_neg * d];
  double* w = &predicate_diag_[sample.p * d];
  const double* du = grad;
  const double* dvp = grad + d;
  const double* dvn = grad + 2 * d;
  const double* dw = grad + 3 * d;
  for (size_t k = 0; k < d; ++k) {
    u[k] += du[k];
    vp[k] += dvp[k];
    vn[k] += dvn[k];
    w[k] += dw[k];
  }
}

void BprModel::RunEpochsBlocked(const std::vector<IdTriple>& triples,
                                size_t epochs) {
  const size_t d = config_.latent_dim;
  const size_t block = config_.sgd_block;
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<Sample> samples;
  samples.reserve(order.size() * config_.negatives_per_positive);
  std::vector<double> grads;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(&order);
    // Presample negatives serially, consuming rng_ in the same
    // shuffled order as the sequential path — the sample stream is
    // thread-count independent by construction.
    samples.clear();
    for (size_t idx : order) {
      const IdTriple& t = triples[idx];
      for (size_t neg = 0; neg < config_.negatives_per_positive; ++neg) {
        uint32_t o_neg =
            static_cast<uint32_t>(rng_.UniformInt(num_entities_));
        if (o_neg == t[2]) {
          o_neg = static_cast<uint32_t>((o_neg + 1) % num_entities_);
        }
        samples.push_back(Sample{t[0], t[1], t[2], o_neg});
      }
    }
    for (size_t start = 0; start < samples.size(); start += block) {
      const size_t count = std::min(block, samples.size() - start);
      grads.resize(count * 4 * d);
      // Gradient computation reads parameters frozen for the whole
      // block (the apply phase below is the only writer), so the
      // ParallelFor is race-free and the grads buffer is identical
      // regardless of how many threads fill it.
      auto compute = [this, &samples, &grads, start, d](size_t i) {
        ComputeGradient(samples[start + i], &grads[i * 4 * d]);
      };
      if (pool_ != nullptr && count > 1) {
        pool_->ParallelFor(count, compute);
      } else {
        for (size_t i = 0; i < count; ++i) compute(i);
      }
      for (size_t i = 0; i < count; ++i) {
        ApplyGradient(samples[start + i], &grads[i * 4 * d]);
      }
    }
  }
}

void BprModel::RunEpochs(const std::vector<IdTriple>& triples,
                         size_t epochs) {
  if (triples.empty() || num_entities_ < 2) return;
  NOUS_SPAN("embed_refresh");
  static Counter* refreshes = MetricsRegistry::Global().GetCounter(
      "nous_embed_refresh_total", "BPR training passes (full or refresh)");
  static Counter* refresh_epochs = MetricsRegistry::Global().GetCounter(
      "nous_embed_refresh_epochs_total", "BPR epochs run across refreshes");
  refreshes->Increment();
  refresh_epochs->Increment(epochs);
  if (config_.sgd_block > 0) {
    RunEpochsBlocked(triples, epochs);
    return;
  }
  std::vector<size_t> order(triples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (size_t epoch = 0; epoch < epochs; ++epoch) {
    rng_.Shuffle(&order);
    for (size_t idx : order) {
      const IdTriple& t = triples[idx];
      for (size_t neg = 0; neg < config_.negatives_per_positive; ++neg) {
        uint32_t o_neg = static_cast<uint32_t>(
            rng_.UniformInt(num_entities_));
        if (o_neg == t[2]) {
          o_neg = static_cast<uint32_t>((o_neg + 1) % num_entities_);
        }
        SgdStep(t[0], t[1], t[2], o_neg);
      }
    }
  }
}

void BprModel::Train(const std::vector<IdTriple>& triples,
                     size_t num_entities, size_t num_predicates) {
  EnsureCapacity(num_entities, num_predicates);
  RunEpochs(triples, config_.epochs);
}

void BprModel::TrainIncremental(const std::vector<IdTriple>& new_triples,
                                size_t num_entities, size_t num_predicates,
                                size_t epochs) {
  EnsureCapacity(num_entities, num_predicates);
  RunEpochs(new_triples, epochs);
}

double BprModel::EstimateLoss(const std::vector<IdTriple>& triples,
                              size_t max_samples) const {
  if (triples.empty() || num_entities_ < 2) return 0;
  Rng rng(config_.seed + 1);
  double total = 0;
  size_t n = std::min(max_samples, triples.size());
  for (size_t i = 0; i < n; ++i) {
    const IdTriple& t = triples[rng.UniformInt(triples.size())];
    uint32_t o_neg =
        static_cast<uint32_t>(rng.UniformInt(num_entities_));
    if (o_neg == t[2]) {
      o_neg = static_cast<uint32_t>((o_neg + 1) % num_entities_);
    }
    double x = RawScore(t[0], t[1], t[2]) - RawScore(t[0], t[1], o_neg);
    total += -std::log(std::max(1e-12, Sigmoid(x)));
  }
  return total / static_cast<double>(n);
}

void BprModel::SaveBinary(BinaryWriter* writer) const {
  uint64_t rng_state[4];
  rng_.SaveState(rng_state);
  for (uint64_t word : rng_state) writer->U64(word);
  writer->U64(num_entities_);
  writer->U64(num_predicates_);
  writer->F64Array(subject_emb_);
  writer->F64Array(object_emb_);
  writer->F64Array(predicate_diag_);
  writer->F64Array(predicate_bias_);
}

Status BprModel::LoadBinary(BinaryReader* reader) {
  uint64_t rng_state[4];
  for (uint64_t& word : rng_state) NOUS_RETURN_IF_ERROR(reader->U64(&word));
  rng_.RestoreState(rng_state);
  uint64_t entities = 0, predicates = 0;
  NOUS_RETURN_IF_ERROR(reader->U64(&entities));
  NOUS_RETURN_IF_ERROR(reader->U64(&predicates));
  num_entities_ = entities;
  num_predicates_ = predicates;
  NOUS_RETURN_IF_ERROR(reader->F64Array(&subject_emb_));
  NOUS_RETURN_IF_ERROR(reader->F64Array(&object_emb_));
  NOUS_RETURN_IF_ERROR(reader->F64Array(&predicate_diag_));
  NOUS_RETURN_IF_ERROR(reader->F64Array(&predicate_bias_));
  const size_t dim = config_.latent_dim;
  if (subject_emb_.size() != num_entities_ * dim ||
      object_emb_.size() != num_entities_ * dim ||
      predicate_diag_.size() != num_predicates_ * dim ||
      predicate_bias_.size() != num_predicates_) {
    return Status::DataLoss(
        "BPR checkpoint dimensions do not match latent_dim " +
        std::to_string(dim));
  }
  return Status::Ok();
}

}  // namespace nous
