#include "embed/baselines.h"

#include <cmath>

namespace nous {

NeighborIndex::NeighborIndex(const std::vector<IdTriple>& triples,
                             size_t num_entities)
    : neighbors_(num_entities) {
  for (const IdTriple& t : triples) {
    if (t[0] >= num_entities || t[2] >= num_entities) continue;
    neighbors_[t[0]].insert(t[2]);
    neighbors_[t[2]].insert(t[0]);
  }
}

const std::unordered_set<uint32_t>& NeighborIndex::Neighbors(
    uint32_t entity) const {
  if (entity >= neighbors_.size()) return empty_;
  return neighbors_[entity];
}

double CommonNeighborsPredictor::Score(uint32_t s, uint32_t /*p*/,
                                       uint32_t o) const {
  const auto& a = index_->Neighbors(s);
  const auto& b = index_->Neighbors(o);
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  size_t common = 0;
  for (uint32_t z : small) common += large.count(z);
  return static_cast<double>(common);
}

double AdamicAdarPredictor::Score(uint32_t s, uint32_t /*p*/,
                                  uint32_t o) const {
  const auto& a = index_->Neighbors(s);
  const auto& b = index_->Neighbors(o);
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  double score = 0;
  for (uint32_t z : small) {
    if (large.count(z) > 0) {
      score += 1.0 / std::log(1.0 + static_cast<double>(
                                        index_->Degree(z)) + 1e-9);
    }
  }
  return score;
}

double PreferentialAttachmentPredictor::Score(uint32_t s, uint32_t /*p*/,
                                              uint32_t o) const {
  return static_cast<double>(index_->Degree(s)) *
         static_cast<double>(index_->Degree(o));
}

double RandomPredictor::Score(uint32_t /*s*/, uint32_t /*p*/,
                              uint32_t /*o*/) const {
  return rng_.UniformDouble();
}

}  // namespace nous
