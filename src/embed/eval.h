#ifndef NOUS_EMBED_EVAL_H_
#define NOUS_EMBED_EVAL_H_

#include <vector>

#include "common/random.h"
#include "embed/link_predictor.h"

namespace nous {

/// Ranking quality of a link predictor under object corruption.
struct RankingMetrics {
  double auc = 0;       // P(score(pos) > score(neg)) + 0.5 * ties
  double mrr = 0;       // mean reciprocal rank among 1 + N corruptions
  double hits_at_10 = 0;
  size_t evaluated = 0;
};

struct EvalConfig {
  /// Corrupted objects sampled per test triple.
  size_t negatives_per_positive = 50;
  uint64_t seed = 77;
};

/// Evaluates by corrupting each test triple's object with random
/// entities (skipping corruptions that collide with known positives in
/// `all_known`, the standard filtered setting).
RankingMetrics EvaluateRanking(const LinkPredictor& predictor,
                               const std::vector<IdTriple>& test,
                               const std::vector<IdTriple>& all_known,
                               size_t num_entities,
                               const EvalConfig& config = {});

/// Deterministic 80/20-style split helper: shuffles and partitions.
void SplitTriples(const std::vector<IdTriple>& triples, double train_frac,
                  uint64_t seed, std::vector<IdTriple>* train,
                  std::vector<IdTriple>* test);

}  // namespace nous

#endif  // NOUS_EMBED_EVAL_H_
