#ifndef NOUS_EMBED_BASELINES_H_
#define NOUS_EMBED_BASELINES_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "embed/link_predictor.h"

namespace nous {

/// Shared topology index for the heuristic baselines: per-entity
/// undirected neighbor sets built from the training triples.
class NeighborIndex {
 public:
  NeighborIndex(const std::vector<IdTriple>& triples, size_t num_entities);

  const std::unordered_set<uint32_t>& Neighbors(uint32_t entity) const;
  size_t Degree(uint32_t entity) const { return Neighbors(entity).size(); }
  size_t num_entities() const { return neighbors_.size(); }

 private:
  std::vector<std::unordered_set<uint32_t>> neighbors_;
  std::unordered_set<uint32_t> empty_;
};

/// Score = |N(s) ∩ N(o)|.
class CommonNeighborsPredictor : public LinkPredictor {
 public:
  explicit CommonNeighborsPredictor(const NeighborIndex* index)
      : index_(index) {}
  double Score(uint32_t s, uint32_t p, uint32_t o) const override;
  std::string name() const override { return "common-neighbors"; }

 private:
  const NeighborIndex* index_;
};

/// Score = sum over common neighbors z of 1 / log(1 + deg(z)).
class AdamicAdarPredictor : public LinkPredictor {
 public:
  explicit AdamicAdarPredictor(const NeighborIndex* index)
      : index_(index) {}
  double Score(uint32_t s, uint32_t p, uint32_t o) const override;
  std::string name() const override { return "adamic-adar"; }

 private:
  const NeighborIndex* index_;
};

/// Score = deg(s) * deg(o).
class PreferentialAttachmentPredictor : public LinkPredictor {
 public:
  explicit PreferentialAttachmentPredictor(const NeighborIndex* index)
      : index_(index) {}
  double Score(uint32_t s, uint32_t p, uint32_t o) const override;
  std::string name() const override { return "pref-attachment"; }

 private:
  const NeighborIndex* index_;
};

/// Uniform random scores — the AUC≈0.5 sanity floor.
class RandomPredictor : public LinkPredictor {
 public:
  explicit RandomPredictor(uint64_t seed) : rng_(seed) {}
  double Score(uint32_t s, uint32_t p, uint32_t o) const override;
  std::string name() const override { return "random"; }

 private:
  mutable Rng rng_;
};

}  // namespace nous

#endif  // NOUS_EMBED_BASELINES_H_
