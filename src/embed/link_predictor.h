#ifndef NOUS_EMBED_LINK_PREDICTOR_H_
#define NOUS_EMBED_LINK_PREDICTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace nous {

/// Integer-id triple (subject, predicate, object) — the unit link
/// predictors train and score on. Ids are dense per snapshot.
using IdTriple = std::array<uint32_t, 3>;

/// Common interface for triple-confidence scorers (§3.4): given a
/// candidate fact, produce a real-valued score; higher = more
/// plausible. BPR produces calibrated (0,1) scores; the topology
/// baselines produce unnormalized scores (fine for ranking metrics).
class LinkPredictor {
 public:
  virtual ~LinkPredictor() = default;

  virtual double Score(uint32_t subject, uint32_t predicate,
                       uint32_t object) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace nous

#endif  // NOUS_EMBED_LINK_PREDICTOR_H_
