# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/common_test[1]_include.cmake")
include("/root/repo/build-review/tests/obs_test[1]_include.cmake")
include("/root/repo/build-review/tests/graph_test[1]_include.cmake")
include("/root/repo/build-review/tests/text_test[1]_include.cmake")
include("/root/repo/build-review/tests/corpus_test[1]_include.cmake")
include("/root/repo/build-review/tests/kb_test[1]_include.cmake")
include("/root/repo/build-review/tests/linker_test[1]_include.cmake")
include("/root/repo/build-review/tests/mapping_test[1]_include.cmake")
include("/root/repo/build-review/tests/embed_test[1]_include.cmake")
include("/root/repo/build-review/tests/topic_test[1]_include.cmake")
include("/root/repo/build-review/tests/mining_test[1]_include.cmake")
include("/root/repo/build-review/tests/qa_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/graph_io_test[1]_include.cmake")
include("/root/repo/build-review/tests/matcher_test[1]_include.cmake")
include("/root/repo/build-review/tests/trust_test[1]_include.cmake")
include("/root/repo/build-review/tests/robustness_test[1]_include.cmake")
include("/root/repo/build-review/tests/kb_io_test[1]_include.cmake")
include("/root/repo/build-review/tests/server_test[1]_include.cmake")
include("/root/repo/build-review/tests/graph_algorithms_test[1]_include.cmake")
include("/root/repo/build-review/tests/authoring_test[1]_include.cmake")
include("/root/repo/build-review/tests/pipeline_param_test[1]_include.cmake")
include("/root/repo/build-review/tests/parallel_pipeline_test[1]_include.cmake")
include("/root/repo/build-review/tests/text_property_test[1]_include.cmake")
include("/root/repo/build-review/tests/annotations_test[1]_include.cmake")
add_test(nous_lint "/root/.pyenv/shims/python3" "/root/repo/tools/nous_lint.py" "--root" "/root/repo")
set_tests_properties(nous_lint PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;40;add_test;/root/repo/tests/CMakeLists.txt;0;")
subdirs("static")
