# CMake generated Testfile for 
# Source directory: /root/repo/tests/static
# Build directory: /root/repo/build-review/tests/static
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
