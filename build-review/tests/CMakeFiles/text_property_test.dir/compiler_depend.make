# Empty compiler generated dependencies file for text_property_test.
# This may be replaced when dependencies are built.
