file(REMOVE_RECURSE
  "CMakeFiles/text_property_test.dir/text_property_test.cc.o"
  "CMakeFiles/text_property_test.dir/text_property_test.cc.o.d"
  "text_property_test"
  "text_property_test.pdb"
  "text_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
