# Empty dependencies file for qa_test.
# This may be replaced when dependencies are built.
