file(REMOVE_RECURSE
  "CMakeFiles/qa_test.dir/qa_test.cc.o"
  "CMakeFiles/qa_test.dir/qa_test.cc.o.d"
  "qa_test"
  "qa_test.pdb"
  "qa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
