# Empty compiler generated dependencies file for annotations_test.
# This may be replaced when dependencies are built.
