file(REMOVE_RECURSE
  "CMakeFiles/annotations_test.dir/annotations_test.cc.o"
  "CMakeFiles/annotations_test.dir/annotations_test.cc.o.d"
  "annotations_test"
  "annotations_test.pdb"
  "annotations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
