file(REMOVE_RECURSE
  "CMakeFiles/kb_io_test.dir/kb_io_test.cc.o"
  "CMakeFiles/kb_io_test.dir/kb_io_test.cc.o.d"
  "kb_io_test"
  "kb_io_test.pdb"
  "kb_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
