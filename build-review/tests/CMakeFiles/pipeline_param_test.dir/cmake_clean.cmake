file(REMOVE_RECURSE
  "CMakeFiles/pipeline_param_test.dir/pipeline_param_test.cc.o"
  "CMakeFiles/pipeline_param_test.dir/pipeline_param_test.cc.o.d"
  "pipeline_param_test"
  "pipeline_param_test.pdb"
  "pipeline_param_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_param_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
