# Empty dependencies file for pipeline_param_test.
# This may be replaced when dependencies are built.
