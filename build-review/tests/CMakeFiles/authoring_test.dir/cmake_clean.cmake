file(REMOVE_RECURSE
  "CMakeFiles/authoring_test.dir/authoring_test.cc.o"
  "CMakeFiles/authoring_test.dir/authoring_test.cc.o.d"
  "authoring_test"
  "authoring_test.pdb"
  "authoring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/authoring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
