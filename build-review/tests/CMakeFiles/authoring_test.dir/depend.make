# Empty dependencies file for authoring_test.
# This may be replaced when dependencies are built.
