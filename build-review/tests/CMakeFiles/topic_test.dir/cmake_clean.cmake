file(REMOVE_RECURSE
  "CMakeFiles/topic_test.dir/topic_test.cc.o"
  "CMakeFiles/topic_test.dir/topic_test.cc.o.d"
  "topic_test"
  "topic_test.pdb"
  "topic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
