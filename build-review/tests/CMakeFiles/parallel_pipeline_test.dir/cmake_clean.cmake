file(REMOVE_RECURSE
  "CMakeFiles/parallel_pipeline_test.dir/parallel_pipeline_test.cc.o"
  "CMakeFiles/parallel_pipeline_test.dir/parallel_pipeline_test.cc.o.d"
  "parallel_pipeline_test"
  "parallel_pipeline_test.pdb"
  "parallel_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
