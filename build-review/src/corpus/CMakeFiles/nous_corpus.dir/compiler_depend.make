# Empty compiler generated dependencies file for nous_corpus.
# This may be replaced when dependencies are built.
