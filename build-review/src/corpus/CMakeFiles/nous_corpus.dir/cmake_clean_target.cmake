file(REMOVE_RECURSE
  "libnous_corpus.a"
)
