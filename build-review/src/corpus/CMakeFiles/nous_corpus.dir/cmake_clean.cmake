file(REMOVE_RECURSE
  "CMakeFiles/nous_corpus.dir/article_generator.cc.o"
  "CMakeFiles/nous_corpus.dir/article_generator.cc.o.d"
  "CMakeFiles/nous_corpus.dir/document_stream.cc.o"
  "CMakeFiles/nous_corpus.dir/document_stream.cc.o.d"
  "CMakeFiles/nous_corpus.dir/world_model.cc.o"
  "CMakeFiles/nous_corpus.dir/world_model.cc.o.d"
  "libnous_corpus.a"
  "libnous_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
