file(REMOVE_RECURSE
  "libnous_obs.a"
)
