file(REMOVE_RECURSE
  "CMakeFiles/nous_obs.dir/metrics.cc.o"
  "CMakeFiles/nous_obs.dir/metrics.cc.o.d"
  "CMakeFiles/nous_obs.dir/trace.cc.o"
  "CMakeFiles/nous_obs.dir/trace.cc.o.d"
  "libnous_obs.a"
  "libnous_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
