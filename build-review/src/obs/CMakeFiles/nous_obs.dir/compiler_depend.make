# Empty compiler generated dependencies file for nous_obs.
# This may be replaced when dependencies are built.
