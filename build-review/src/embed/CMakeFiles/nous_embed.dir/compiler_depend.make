# Empty compiler generated dependencies file for nous_embed.
# This may be replaced when dependencies are built.
