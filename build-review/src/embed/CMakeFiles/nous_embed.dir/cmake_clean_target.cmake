file(REMOVE_RECURSE
  "libnous_embed.a"
)
