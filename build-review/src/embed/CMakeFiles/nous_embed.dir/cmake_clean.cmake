file(REMOVE_RECURSE
  "CMakeFiles/nous_embed.dir/baselines.cc.o"
  "CMakeFiles/nous_embed.dir/baselines.cc.o.d"
  "CMakeFiles/nous_embed.dir/bpr.cc.o"
  "CMakeFiles/nous_embed.dir/bpr.cc.o.d"
  "CMakeFiles/nous_embed.dir/eval.cc.o"
  "CMakeFiles/nous_embed.dir/eval.cc.o.d"
  "libnous_embed.a"
  "libnous_embed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_embed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
