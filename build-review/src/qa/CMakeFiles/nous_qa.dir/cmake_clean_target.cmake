file(REMOVE_RECURSE
  "libnous_qa.a"
)
