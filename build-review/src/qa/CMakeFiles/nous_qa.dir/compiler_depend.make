# Empty compiler generated dependencies file for nous_qa.
# This may be replaced when dependencies are built.
