
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qa/path_baselines.cc" "src/qa/CMakeFiles/nous_qa.dir/path_baselines.cc.o" "gcc" "src/qa/CMakeFiles/nous_qa.dir/path_baselines.cc.o.d"
  "/root/repo/src/qa/path_search.cc" "src/qa/CMakeFiles/nous_qa.dir/path_search.cc.o" "gcc" "src/qa/CMakeFiles/nous_qa.dir/path_search.cc.o.d"
  "/root/repo/src/qa/query.cc" "src/qa/CMakeFiles/nous_qa.dir/query.cc.o" "gcc" "src/qa/CMakeFiles/nous_qa.dir/query.cc.o.d"
  "/root/repo/src/qa/query_engine.cc" "src/qa/CMakeFiles/nous_qa.dir/query_engine.cc.o" "gcc" "src/qa/CMakeFiles/nous_qa.dir/query_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/nous_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nous_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/topic/CMakeFiles/nous_topic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mining/CMakeFiles/nous_mining.dir/DependInfo.cmake"
  "/root/repo/build-review/src/text/CMakeFiles/nous_text.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/nous_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
