file(REMOVE_RECURSE
  "CMakeFiles/nous_qa.dir/path_baselines.cc.o"
  "CMakeFiles/nous_qa.dir/path_baselines.cc.o.d"
  "CMakeFiles/nous_qa.dir/path_search.cc.o"
  "CMakeFiles/nous_qa.dir/path_search.cc.o.d"
  "CMakeFiles/nous_qa.dir/query.cc.o"
  "CMakeFiles/nous_qa.dir/query.cc.o.d"
  "CMakeFiles/nous_qa.dir/query_engine.cc.o"
  "CMakeFiles/nous_qa.dir/query_engine.cc.o.d"
  "libnous_qa.a"
  "libnous_qa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_qa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
