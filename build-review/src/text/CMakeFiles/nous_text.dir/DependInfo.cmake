
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/coref.cc" "src/text/CMakeFiles/nous_text.dir/coref.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/coref.cc.o.d"
  "/root/repo/src/text/date_parser.cc" "src/text/CMakeFiles/nous_text.dir/date_parser.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/date_parser.cc.o.d"
  "/root/repo/src/text/lexicon.cc" "src/text/CMakeFiles/nous_text.dir/lexicon.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/lexicon.cc.o.d"
  "/root/repo/src/text/ner.cc" "src/text/CMakeFiles/nous_text.dir/ner.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/ner.cc.o.d"
  "/root/repo/src/text/openie.cc" "src/text/CMakeFiles/nous_text.dir/openie.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/openie.cc.o.d"
  "/root/repo/src/text/pos_tagger.cc" "src/text/CMakeFiles/nous_text.dir/pos_tagger.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/pos_tagger.cc.o.d"
  "/root/repo/src/text/sentence_splitter.cc" "src/text/CMakeFiles/nous_text.dir/sentence_splitter.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/sentence_splitter.cc.o.d"
  "/root/repo/src/text/srl.cc" "src/text/CMakeFiles/nous_text.dir/srl.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/srl.cc.o.d"
  "/root/repo/src/text/tokenizer.cc" "src/text/CMakeFiles/nous_text.dir/tokenizer.cc.o" "gcc" "src/text/CMakeFiles/nous_text.dir/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/nous_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nous_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
