# Empty compiler generated dependencies file for nous_text.
# This may be replaced when dependencies are built.
