file(REMOVE_RECURSE
  "CMakeFiles/nous_text.dir/coref.cc.o"
  "CMakeFiles/nous_text.dir/coref.cc.o.d"
  "CMakeFiles/nous_text.dir/date_parser.cc.o"
  "CMakeFiles/nous_text.dir/date_parser.cc.o.d"
  "CMakeFiles/nous_text.dir/lexicon.cc.o"
  "CMakeFiles/nous_text.dir/lexicon.cc.o.d"
  "CMakeFiles/nous_text.dir/ner.cc.o"
  "CMakeFiles/nous_text.dir/ner.cc.o.d"
  "CMakeFiles/nous_text.dir/openie.cc.o"
  "CMakeFiles/nous_text.dir/openie.cc.o.d"
  "CMakeFiles/nous_text.dir/pos_tagger.cc.o"
  "CMakeFiles/nous_text.dir/pos_tagger.cc.o.d"
  "CMakeFiles/nous_text.dir/sentence_splitter.cc.o"
  "CMakeFiles/nous_text.dir/sentence_splitter.cc.o.d"
  "CMakeFiles/nous_text.dir/srl.cc.o"
  "CMakeFiles/nous_text.dir/srl.cc.o.d"
  "CMakeFiles/nous_text.dir/tokenizer.cc.o"
  "CMakeFiles/nous_text.dir/tokenizer.cc.o.d"
  "libnous_text.a"
  "libnous_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
