file(REMOVE_RECURSE
  "libnous_text.a"
)
