file(REMOVE_RECURSE
  "CMakeFiles/nous_mining.dir/arabesque_sim.cc.o"
  "CMakeFiles/nous_mining.dir/arabesque_sim.cc.o.d"
  "CMakeFiles/nous_mining.dir/continuous_query.cc.o"
  "CMakeFiles/nous_mining.dir/continuous_query.cc.o.d"
  "CMakeFiles/nous_mining.dir/gspan.cc.o"
  "CMakeFiles/nous_mining.dir/gspan.cc.o.d"
  "CMakeFiles/nous_mining.dir/pattern.cc.o"
  "CMakeFiles/nous_mining.dir/pattern.cc.o.d"
  "CMakeFiles/nous_mining.dir/pattern_matcher.cc.o"
  "CMakeFiles/nous_mining.dir/pattern_matcher.cc.o.d"
  "CMakeFiles/nous_mining.dir/streaming_miner.cc.o"
  "CMakeFiles/nous_mining.dir/streaming_miner.cc.o.d"
  "CMakeFiles/nous_mining.dir/subgraph_enum.cc.o"
  "CMakeFiles/nous_mining.dir/subgraph_enum.cc.o.d"
  "libnous_mining.a"
  "libnous_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
