file(REMOVE_RECURSE
  "libnous_mining.a"
)
