# Empty compiler generated dependencies file for nous_mining.
# This may be replaced when dependencies are built.
