
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/arabesque_sim.cc" "src/mining/CMakeFiles/nous_mining.dir/arabesque_sim.cc.o" "gcc" "src/mining/CMakeFiles/nous_mining.dir/arabesque_sim.cc.o.d"
  "/root/repo/src/mining/continuous_query.cc" "src/mining/CMakeFiles/nous_mining.dir/continuous_query.cc.o" "gcc" "src/mining/CMakeFiles/nous_mining.dir/continuous_query.cc.o.d"
  "/root/repo/src/mining/gspan.cc" "src/mining/CMakeFiles/nous_mining.dir/gspan.cc.o" "gcc" "src/mining/CMakeFiles/nous_mining.dir/gspan.cc.o.d"
  "/root/repo/src/mining/pattern.cc" "src/mining/CMakeFiles/nous_mining.dir/pattern.cc.o" "gcc" "src/mining/CMakeFiles/nous_mining.dir/pattern.cc.o.d"
  "/root/repo/src/mining/pattern_matcher.cc" "src/mining/CMakeFiles/nous_mining.dir/pattern_matcher.cc.o" "gcc" "src/mining/CMakeFiles/nous_mining.dir/pattern_matcher.cc.o.d"
  "/root/repo/src/mining/streaming_miner.cc" "src/mining/CMakeFiles/nous_mining.dir/streaming_miner.cc.o" "gcc" "src/mining/CMakeFiles/nous_mining.dir/streaming_miner.cc.o.d"
  "/root/repo/src/mining/subgraph_enum.cc" "src/mining/CMakeFiles/nous_mining.dir/subgraph_enum.cc.o" "gcc" "src/mining/CMakeFiles/nous_mining.dir/subgraph_enum.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/nous_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nous_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/nous_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
