
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/curated_kb.cc" "src/kb/CMakeFiles/nous_kb.dir/curated_kb.cc.o" "gcc" "src/kb/CMakeFiles/nous_kb.dir/curated_kb.cc.o.d"
  "/root/repo/src/kb/kb_generator.cc" "src/kb/CMakeFiles/nous_kb.dir/kb_generator.cc.o" "gcc" "src/kb/CMakeFiles/nous_kb.dir/kb_generator.cc.o.d"
  "/root/repo/src/kb/kb_io.cc" "src/kb/CMakeFiles/nous_kb.dir/kb_io.cc.o" "gcc" "src/kb/CMakeFiles/nous_kb.dir/kb_io.cc.o.d"
  "/root/repo/src/kb/ontology.cc" "src/kb/CMakeFiles/nous_kb.dir/ontology.cc.o" "gcc" "src/kb/CMakeFiles/nous_kb.dir/ontology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/nous_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nous_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/corpus/CMakeFiles/nous_corpus.dir/DependInfo.cmake"
  "/root/repo/build-review/src/text/CMakeFiles/nous_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
