file(REMOVE_RECURSE
  "CMakeFiles/nous_kb.dir/curated_kb.cc.o"
  "CMakeFiles/nous_kb.dir/curated_kb.cc.o.d"
  "CMakeFiles/nous_kb.dir/kb_generator.cc.o"
  "CMakeFiles/nous_kb.dir/kb_generator.cc.o.d"
  "CMakeFiles/nous_kb.dir/kb_io.cc.o"
  "CMakeFiles/nous_kb.dir/kb_io.cc.o.d"
  "CMakeFiles/nous_kb.dir/ontology.cc.o"
  "CMakeFiles/nous_kb.dir/ontology.cc.o.d"
  "libnous_kb.a"
  "libnous_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
