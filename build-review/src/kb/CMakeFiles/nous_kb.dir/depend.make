# Empty dependencies file for nous_kb.
# This may be replaced when dependencies are built.
