file(REMOVE_RECURSE
  "libnous_kb.a"
)
