
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topic/divergence.cc" "src/topic/CMakeFiles/nous_topic.dir/divergence.cc.o" "gcc" "src/topic/CMakeFiles/nous_topic.dir/divergence.cc.o.d"
  "/root/repo/src/topic/doc_term.cc" "src/topic/CMakeFiles/nous_topic.dir/doc_term.cc.o" "gcc" "src/topic/CMakeFiles/nous_topic.dir/doc_term.cc.o.d"
  "/root/repo/src/topic/lda.cc" "src/topic/CMakeFiles/nous_topic.dir/lda.cc.o" "gcc" "src/topic/CMakeFiles/nous_topic.dir/lda.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/nous_common.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nous_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
