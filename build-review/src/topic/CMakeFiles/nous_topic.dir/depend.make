# Empty dependencies file for nous_topic.
# This may be replaced when dependencies are built.
