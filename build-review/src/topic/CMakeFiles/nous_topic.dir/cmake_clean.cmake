file(REMOVE_RECURSE
  "CMakeFiles/nous_topic.dir/divergence.cc.o"
  "CMakeFiles/nous_topic.dir/divergence.cc.o.d"
  "CMakeFiles/nous_topic.dir/doc_term.cc.o"
  "CMakeFiles/nous_topic.dir/doc_term.cc.o.d"
  "CMakeFiles/nous_topic.dir/lda.cc.o"
  "CMakeFiles/nous_topic.dir/lda.cc.o.d"
  "libnous_topic.a"
  "libnous_topic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_topic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
