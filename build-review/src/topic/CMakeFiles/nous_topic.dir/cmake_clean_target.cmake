file(REMOVE_RECURSE
  "libnous_topic.a"
)
