file(REMOVE_RECURSE
  "libnous_graph.a"
)
