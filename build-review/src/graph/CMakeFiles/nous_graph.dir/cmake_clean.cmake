file(REMOVE_RECURSE
  "CMakeFiles/nous_graph.dir/dictionary.cc.o"
  "CMakeFiles/nous_graph.dir/dictionary.cc.o.d"
  "CMakeFiles/nous_graph.dir/dot_export.cc.o"
  "CMakeFiles/nous_graph.dir/dot_export.cc.o.d"
  "CMakeFiles/nous_graph.dir/graph_algorithms.cc.o"
  "CMakeFiles/nous_graph.dir/graph_algorithms.cc.o.d"
  "CMakeFiles/nous_graph.dir/graph_generator.cc.o"
  "CMakeFiles/nous_graph.dir/graph_generator.cc.o.d"
  "CMakeFiles/nous_graph.dir/graph_io.cc.o"
  "CMakeFiles/nous_graph.dir/graph_io.cc.o.d"
  "CMakeFiles/nous_graph.dir/graph_stats.cc.o"
  "CMakeFiles/nous_graph.dir/graph_stats.cc.o.d"
  "CMakeFiles/nous_graph.dir/property_graph.cc.o"
  "CMakeFiles/nous_graph.dir/property_graph.cc.o.d"
  "CMakeFiles/nous_graph.dir/temporal_window.cc.o"
  "CMakeFiles/nous_graph.dir/temporal_window.cc.o.d"
  "libnous_graph.a"
  "libnous_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
