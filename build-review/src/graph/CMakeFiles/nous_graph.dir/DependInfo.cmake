
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/dictionary.cc" "src/graph/CMakeFiles/nous_graph.dir/dictionary.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/dictionary.cc.o.d"
  "/root/repo/src/graph/dot_export.cc" "src/graph/CMakeFiles/nous_graph.dir/dot_export.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/dot_export.cc.o.d"
  "/root/repo/src/graph/graph_algorithms.cc" "src/graph/CMakeFiles/nous_graph.dir/graph_algorithms.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/graph_algorithms.cc.o.d"
  "/root/repo/src/graph/graph_generator.cc" "src/graph/CMakeFiles/nous_graph.dir/graph_generator.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/graph_generator.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/graph/CMakeFiles/nous_graph.dir/graph_io.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/graph_io.cc.o.d"
  "/root/repo/src/graph/graph_stats.cc" "src/graph/CMakeFiles/nous_graph.dir/graph_stats.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/graph_stats.cc.o.d"
  "/root/repo/src/graph/property_graph.cc" "src/graph/CMakeFiles/nous_graph.dir/property_graph.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/property_graph.cc.o.d"
  "/root/repo/src/graph/temporal_window.cc" "src/graph/CMakeFiles/nous_graph.dir/temporal_window.cc.o" "gcc" "src/graph/CMakeFiles/nous_graph.dir/temporal_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/common/CMakeFiles/nous_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
