# Empty dependencies file for nous_graph.
# This may be replaced when dependencies are built.
