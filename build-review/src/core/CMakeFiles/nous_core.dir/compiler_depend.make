# Empty compiler generated dependencies file for nous_core.
# This may be replaced when dependencies are built.
