file(REMOVE_RECURSE
  "libnous_core.a"
)
