file(REMOVE_RECURSE
  "CMakeFiles/nous_core.dir/nous.cc.o"
  "CMakeFiles/nous_core.dir/nous.cc.o.d"
  "CMakeFiles/nous_core.dir/pipeline.cc.o"
  "CMakeFiles/nous_core.dir/pipeline.cc.o.d"
  "CMakeFiles/nous_core.dir/source_trust.cc.o"
  "CMakeFiles/nous_core.dir/source_trust.cc.o.d"
  "libnous_core.a"
  "libnous_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
