file(REMOVE_RECURSE
  "libnous_common.a"
)
