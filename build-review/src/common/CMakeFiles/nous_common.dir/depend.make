# Empty dependencies file for nous_common.
# This may be replaced when dependencies are built.
