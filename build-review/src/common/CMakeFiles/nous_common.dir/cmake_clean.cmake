file(REMOVE_RECURSE
  "CMakeFiles/nous_common.dir/histogram.cc.o"
  "CMakeFiles/nous_common.dir/histogram.cc.o.d"
  "CMakeFiles/nous_common.dir/logging.cc.o"
  "CMakeFiles/nous_common.dir/logging.cc.o.d"
  "CMakeFiles/nous_common.dir/status.cc.o"
  "CMakeFiles/nous_common.dir/status.cc.o.d"
  "CMakeFiles/nous_common.dir/string_util.cc.o"
  "CMakeFiles/nous_common.dir/string_util.cc.o.d"
  "CMakeFiles/nous_common.dir/table_printer.cc.o"
  "CMakeFiles/nous_common.dir/table_printer.cc.o.d"
  "CMakeFiles/nous_common.dir/thread_pool.cc.o"
  "CMakeFiles/nous_common.dir/thread_pool.cc.o.d"
  "libnous_common.a"
  "libnous_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
