file(REMOVE_RECURSE
  "libnous_mapping.a"
)
