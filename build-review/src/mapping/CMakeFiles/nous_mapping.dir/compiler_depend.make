# Empty compiler generated dependencies file for nous_mapping.
# This may be replaced when dependencies are built.
