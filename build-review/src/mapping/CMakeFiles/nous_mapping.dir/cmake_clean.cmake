file(REMOVE_RECURSE
  "CMakeFiles/nous_mapping.dir/distant_supervision.cc.o"
  "CMakeFiles/nous_mapping.dir/distant_supervision.cc.o.d"
  "CMakeFiles/nous_mapping.dir/predicate_mapper.cc.o"
  "CMakeFiles/nous_mapping.dir/predicate_mapper.cc.o.d"
  "libnous_mapping.a"
  "libnous_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
