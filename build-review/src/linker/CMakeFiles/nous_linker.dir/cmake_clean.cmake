file(REMOVE_RECURSE
  "CMakeFiles/nous_linker.dir/context.cc.o"
  "CMakeFiles/nous_linker.dir/context.cc.o.d"
  "CMakeFiles/nous_linker.dir/entity_linker.cc.o"
  "CMakeFiles/nous_linker.dir/entity_linker.cc.o.d"
  "libnous_linker.a"
  "libnous_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
