file(REMOVE_RECURSE
  "libnous_linker.a"
)
