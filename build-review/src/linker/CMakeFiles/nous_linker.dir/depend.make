# Empty dependencies file for nous_linker.
# This may be replaced when dependencies are built.
