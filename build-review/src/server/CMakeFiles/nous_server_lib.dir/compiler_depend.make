# Empty compiler generated dependencies file for nous_server_lib.
# This may be replaced when dependencies are built.
