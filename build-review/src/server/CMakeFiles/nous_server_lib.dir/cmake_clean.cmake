file(REMOVE_RECURSE
  "CMakeFiles/nous_server_lib.dir/api.cc.o"
  "CMakeFiles/nous_server_lib.dir/api.cc.o.d"
  "CMakeFiles/nous_server_lib.dir/http_server.cc.o"
  "CMakeFiles/nous_server_lib.dir/http_server.cc.o.d"
  "CMakeFiles/nous_server_lib.dir/json_writer.cc.o"
  "CMakeFiles/nous_server_lib.dir/json_writer.cc.o.d"
  "libnous_server_lib.a"
  "libnous_server_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_server_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
