file(REMOVE_RECURSE
  "libnous_server_lib.a"
)
