file(REMOVE_RECURSE
  "CMakeFiles/bench_pattern_discovery.dir/bench_pattern_discovery.cc.o"
  "CMakeFiles/bench_pattern_discovery.dir/bench_pattern_discovery.cc.o.d"
  "bench_pattern_discovery"
  "bench_pattern_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pattern_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
