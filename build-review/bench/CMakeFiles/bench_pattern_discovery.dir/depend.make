# Empty dependencies file for bench_pattern_discovery.
# This may be replaced when dependencies are built.
