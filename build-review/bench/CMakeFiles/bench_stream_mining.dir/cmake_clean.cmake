file(REMOVE_RECURSE
  "CMakeFiles/bench_stream_mining.dir/bench_stream_mining.cc.o"
  "CMakeFiles/bench_stream_mining.dir/bench_stream_mining.cc.o.d"
  "bench_stream_mining"
  "bench_stream_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stream_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
