# Empty dependencies file for bench_kg_construction.
# This may be replaced when dependencies are built.
