file(REMOVE_RECURSE
  "CMakeFiles/bench_kg_construction.dir/bench_kg_construction.cc.o"
  "CMakeFiles/bench_kg_construction.dir/bench_kg_construction.cc.o.d"
  "bench_kg_construction"
  "bench_kg_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kg_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
