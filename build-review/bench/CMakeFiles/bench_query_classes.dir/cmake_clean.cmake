file(REMOVE_RECURSE
  "CMakeFiles/bench_query_classes.dir/bench_query_classes.cc.o"
  "CMakeFiles/bench_query_classes.dir/bench_query_classes.cc.o.d"
  "bench_query_classes"
  "bench_query_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
