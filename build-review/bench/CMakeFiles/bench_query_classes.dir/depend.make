# Empty dependencies file for bench_query_classes.
# This may be replaced when dependencies are built.
