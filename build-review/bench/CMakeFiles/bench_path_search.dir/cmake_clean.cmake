file(REMOVE_RECURSE
  "CMakeFiles/bench_path_search.dir/bench_path_search.cc.o"
  "CMakeFiles/bench_path_search.dir/bench_path_search.cc.o.d"
  "bench_path_search"
  "bench_path_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_path_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
