# Empty dependencies file for bench_path_search.
# This may be replaced when dependencies are built.
