file(REMOVE_RECURSE
  "CMakeFiles/bench_link_prediction.dir/bench_link_prediction.cc.o"
  "CMakeFiles/bench_link_prediction.dir/bench_link_prediction.cc.o.d"
  "bench_link_prediction"
  "bench_link_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_link_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
