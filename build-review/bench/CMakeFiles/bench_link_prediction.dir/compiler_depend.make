# Empty compiler generated dependencies file for bench_link_prediction.
# This may be replaced when dependencies are built.
