file(REMOVE_RECURSE
  "CMakeFiles/nous_server.dir/nous_server.cpp.o"
  "CMakeFiles/nous_server.dir/nous_server.cpp.o.d"
  "nous_server"
  "nous_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
