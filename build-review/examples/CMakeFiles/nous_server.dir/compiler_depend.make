# Empty compiler generated dependencies file for nous_server.
# This may be replaced when dependencies are built.
