# Empty compiler generated dependencies file for nous_cli.
# This may be replaced when dependencies are built.
