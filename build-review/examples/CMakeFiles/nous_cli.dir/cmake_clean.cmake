file(REMOVE_RECURSE
  "CMakeFiles/nous_cli.dir/nous_cli.cpp.o"
  "CMakeFiles/nous_cli.dir/nous_cli.cpp.o.d"
  "nous_cli"
  "nous_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nous_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
