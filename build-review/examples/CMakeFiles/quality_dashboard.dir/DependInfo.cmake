
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quality_dashboard.cpp" "examples/CMakeFiles/quality_dashboard.dir/quality_dashboard.cpp.o" "gcc" "examples/CMakeFiles/quality_dashboard.dir/quality_dashboard.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/core/CMakeFiles/nous_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/linker/CMakeFiles/nous_linker.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mapping/CMakeFiles/nous_mapping.dir/DependInfo.cmake"
  "/root/repo/build-review/src/kb/CMakeFiles/nous_kb.dir/DependInfo.cmake"
  "/root/repo/build-review/src/corpus/CMakeFiles/nous_corpus.dir/DependInfo.cmake"
  "/root/repo/build-review/src/embed/CMakeFiles/nous_embed.dir/DependInfo.cmake"
  "/root/repo/build-review/src/qa/CMakeFiles/nous_qa.dir/DependInfo.cmake"
  "/root/repo/build-review/src/text/CMakeFiles/nous_text.dir/DependInfo.cmake"
  "/root/repo/build-review/src/topic/CMakeFiles/nous_topic.dir/DependInfo.cmake"
  "/root/repo/build-review/src/mining/CMakeFiles/nous_mining.dir/DependInfo.cmake"
  "/root/repo/build-review/src/obs/CMakeFiles/nous_obs.dir/DependInfo.cmake"
  "/root/repo/build-review/src/graph/CMakeFiles/nous_graph.dir/DependInfo.cmake"
  "/root/repo/build-review/src/common/CMakeFiles/nous_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
