# Empty dependencies file for quality_dashboard.
# This may be replaced when dependencies are built.
