file(REMOVE_RECURSE
  "CMakeFiles/quality_dashboard.dir/quality_dashboard.cpp.o"
  "CMakeFiles/quality_dashboard.dir/quality_dashboard.cpp.o.d"
  "quality_dashboard"
  "quality_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quality_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
