# Empty compiler generated dependencies file for insider_threat.
# This may be replaced when dependencies are built.
