file(REMOVE_RECURSE
  "CMakeFiles/insider_threat.dir/insider_threat.cpp.o"
  "CMakeFiles/insider_threat.dir/insider_threat.cpp.o.d"
  "insider_threat"
  "insider_threat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/insider_threat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
