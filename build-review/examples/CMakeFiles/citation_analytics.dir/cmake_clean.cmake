file(REMOVE_RECURSE
  "CMakeFiles/citation_analytics.dir/citation_analytics.cpp.o"
  "CMakeFiles/citation_analytics.dir/citation_analytics.cpp.o.d"
  "citation_analytics"
  "citation_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citation_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
