# Empty compiler generated dependencies file for citation_analytics.
# This may be replaced when dependencies are built.
