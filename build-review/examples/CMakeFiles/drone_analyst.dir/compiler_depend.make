# Empty compiler generated dependencies file for drone_analyst.
# This may be replaced when dependencies are built.
