file(REMOVE_RECURSE
  "CMakeFiles/drone_analyst.dir/drone_analyst.cpp.o"
  "CMakeFiles/drone_analyst.dir/drone_analyst.cpp.o.d"
  "drone_analyst"
  "drone_analyst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_analyst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
