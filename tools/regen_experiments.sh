#!/usr/bin/env bash
# Regenerates every experiment table (EXPERIMENTS.md's sources) and the
# test/bench transcripts checked at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja >/dev/null
cmake --build build >/dev/null

echo "== tests =="
ctest --test-dir build 2>&1 | tee test_output.txt | tail -3

echo "== benches =="
: > bench_output.txt
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $(basename "$b") =====" | tee -a bench_output.txt
    "$b" 2>&1 | tee -a bench_output.txt
  fi
done
echo "done: test_output.txt bench_output.txt"
