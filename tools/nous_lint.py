#!/usr/bin/env python3
"""NOUS invariant linter: repo-specific rules the compilers can't check.

Scans src/ and reports violations of the project's locking and
hygiene contracts (DESIGN.md "Static analysis & locking contracts"):

  R1 guarded-mutex    Every mutex member must have at least one member
                      GUARDED_BY it in the same file, or carry a
                      `// lint: unguarded(reason)` suppression: a mutex
                      that guards nothing is either dead or (worse)
                      guarding something the annotations don't know
                      about.
  R2 annotated-mutex  Outside src/common, mutex members must be the
                      annotated wrappers (AnnotatedMutex /
                      AnnotatedSharedMutex), never raw std::mutex /
                      std::shared_mutex, so Clang's thread-safety
                      analysis sees every lock in the system.
  R3 no-naked-new     No naked `new` / `delete` expressions outside
                      src/common (smart pointers and containers only).
                      Leaky singletons are suppressed with
                      `// lint: new-ok(reason)`.
  R4 unlocked-suffix  Every method named *Unlocked or *Locked (the
                      caller-must-hold-the-lock convention) must
                      declare REQUIRES(...) or REQUIRES_SHARED(...).
  R5 no-cout          No std::cout in src/: library code logs through
                      common/logging.h, binaries write to an explicit
                      stream. Suppress with `// lint: cout-ok(reason)`.
  R6 include-guard    Every header under src/ has an include guard
                      named NOUS_<RELATIVE_PATH>_H_.
  R7 no-build-files   No build artifacts may be tracked by git: no
                      build*/ trees, CMake caches, object/dependency
                      files, or test logs. (PR 3 accidentally checked
                      in ~20k lines of build-review/; this rule keeps
                      that from ever landing again.) Skipped when the
                      root is not a git work tree.
  R8 span-in-handler  Every HTTP endpoint handler in src/server (a
                      `HttpResponse Class::Handle*(...)` definition)
                      must open a NOUS_SPAN / NOUS_SPAN_VAR in its
                      body, so every request path shows up in
                      /api/trace and the per-stage latency histograms.
                      Suppress with `// lint: no-span(reason)`.
  R9 use-count        use_count() may appear only in graph/cow.h: the
                      COW layer is the one place where refcount
                      exactness (use_count()==1 means sole owner) is a
                      valid argument — everywhere else it is a racy
                      smell. Regex fallback for the
                      nous-cow-discipline clang-tidy check
                      (tools/nous-tidy) on GCC-only machines.
                      Suppress with `// lint: use-count-ok(reason)`.
  R10 detach-outside-cow
                      Detach() force-forks a COW chunk (silently
                      un-sharing it from every snapshot) and is
                      allowed only in src/graph/ and the durability
                      serialization layer. Suppress with
                      `// lint: detach-ok(reason)`.
  R11 raw-socket      Raw socket primitives (::send, ::recv,
                      socket(...)) are confined to the two transport
                      layers — src/replication/ and
                      src/server/http_server.cc — so every byte on the
                      wire flows through code that owns deadlines,
                      partial-IO handling, and the NOUS_FAULTS
                      injection points. Suppress with
                      `// lint: socket-ok(reason)`.
  R12 graph-mutation  Direct PropertyGraph mutation (GetOrAddVertex,
                      AddEdge, RemoveEdge, SetVertexType,
                      SetVertexTopics, AddVertexTerm,
                      SetEdgeConfidence, RebuildDerivedIndexes) is
                      confined to the commit path: src/graph/ itself,
                      the sequential planner (src/core/pipeline.cc),
                      and the shard replay lanes
                      (src/core/shard_set.cc). Anywhere else a write
                      would bypass op capture, and the N-shard replay
                      (DESIGN.md §5.16) silently diverges from the
                      planner. Suppress with
                      `// lint: graph-mutation-ok(reason)`.

Suppression comments must name a reason; empty parentheses do not
count. Exit status is the number of violations (capped at 125).

Usage: tools/nous_lint.py [--root DIR]
"""

import argparse
import os
import re
import subprocess
import sys

# R7: path patterns that mark a tracked file as a build artifact.
BUILD_ARTIFACT_RE = re.compile(
    r"(^|/)build[^/]*/"            # any build*/ tree at any depth
    r"|(^|/)CMakeCache\.txt$"
    r"|(^|/)CMakeFiles/"
    r"|(^|/)Testing/"              # ctest scratch (LastTest.log etc.)
    r"|\.o(\.d)?$|\.obj$|\.gcda$|\.gcno$"
    r"|(^|/)compile_commands\.json$")

MUTEX_TYPES = r"(?:std::mutex|std::shared_mutex|std::recursive_mutex|" \
              r"std::timed_mutex|AnnotatedMutex|AnnotatedSharedMutex)"
MUTEX_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?(" + MUTEX_TYPES + r")\s+(\w+)\s*;")
RAW_MUTEX_TYPES = ("std::mutex", "std::shared_mutex",
                   "std::recursive_mutex", "std::timed_mutex")
NEW_RE = re.compile(r"(?<![\w.>])new\b(?!\s*\()")
DELETE_RE = re.compile(r"(?<![\w.>])delete(?:\s*\[\s*\])?\s+[\w*(]")
SUFFIX_DECL_RE = re.compile(r"\b(\w+(?:Unlocked|Locked))\s*\(")
GUARD_TOKEN_RE = re.compile(r"[^A-Za-z0-9]")

SUPPRESS_RE = {
    "unguarded": re.compile(r"//\s*lint:\s*unguarded\(\s*[^)\s][^)]*\)"),
    "new-ok": re.compile(r"//\s*lint:\s*new-ok\(\s*[^)\s][^)]*\)"),
    "cout-ok": re.compile(r"//\s*lint:\s*cout-ok\(\s*[^)\s][^)]*\)"),
    "no-span": re.compile(r"//\s*lint:\s*no-span\(\s*[^)\s][^)]*\)"),
    "use-count-ok":
        re.compile(r"//\s*lint:\s*use-count-ok\(\s*[^)\s][^)]*\)"),
    "detach-ok": re.compile(r"//\s*lint:\s*detach-ok\(\s*[^)\s][^)]*\)"),
    "socket-ok": re.compile(r"//\s*lint:\s*socket-ok\(\s*[^)\s][^)]*\)"),
    "graph-mutation-ok":
        re.compile(r"//\s*lint:\s*graph-mutation-ok\(\s*[^)\s][^)]*\)"),
}

# R8: an out-of-class endpoint handler definition in src/server.
HANDLER_DEF_RE = re.compile(r"^HttpResponse\s+\w+::(Handle\w*)\s*\(")

# R9/R10: COW-discipline tokens.
USE_COUNT_RE = re.compile(r"\buse_count\s*\(")
DETACH_RE = re.compile(r"(?:\.|->)\s*Detach\s*\(")

# R11: raw socket primitives. `::send`/`::recv` must carry the
# global-scope qualifier (method names like SendAll don't match);
# `socket(...)` is the syscall itself, rejected even unqualified.
RAW_SOCKET_RE = re.compile(
    r"::\s*(?:send|recv)\s*\(|(?<![\w:.>])socket\s*\(")

# R12: PropertyGraph mutators, matched as member calls (`.`/`->`) so
# declarations and same-name wrappers (SetEdgeConfidenceTracked) pass.
GRAPH_MUTATOR_RE = re.compile(
    r"(?:\.|->)\s*(GetOrAddVertex|AddEdge|RemoveEdge|SetVertexType|"
    r"SetVertexTopics|AddVertexTerm|SetEdgeConfidence|"
    r"RebuildDerivedIndexes)\s*\(")
# The commit path: the graph layer, the sequential planner, the shard
# replay lanes.
GRAPH_MUTATION_ALLOWED = (
    "/src/graph/", "/src/core/pipeline.cc", "/src/core/shard_set.cc")


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving line
    structure so reported line numbers match the file."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr | raw
    raw_delim = ""
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                i += 2
                continue
            if c == '"':
                # Raw string literal: R"delim( ... )delim"
                m = re.match(r'R"([^(\s\\]{0,16})\(', text[i - 1:i + 20]) \
                    if i > 0 and text[i - 1] == "R" else None
                if m:
                    raw_delim = ")" + m.group(1) + '"'
                    state = "raw"
                    i += len(m.group(1)) + 2
                    continue
                state = "str"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append(c)
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line":
            if c == "\n":
                out.append(c)
                state = "code"
            i += 1
        elif state == "block":
            if c == "\n":
                out.append(c)
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
        elif state in ("str", "chr"):
            if c == "\\":
                i += 2
                continue
            if c == "\n":
                out.append(c)
                state = "code"  # unterminated; bail to code
                i += 1
                continue
            if (state == "str" and c == '"') or \
                    (state == "chr" and c == "'"):
                out.append(c)
                state = "code"
            i += 1
        elif state == "raw":
            if c == "\n":
                out.append(c)
            if text.startswith(raw_delim, i):
                i += len(raw_delim)
                out.append('"')
                state = "code"
                continue
            i += 1
    return "".join(out)


def suppressed(raw_lines, lineno, kind, lookback=2):
    """True when the suppression comment sits on the flagged line or on
    one of the `lookback` lines above it."""
    pattern = SUPPRESS_RE[kind]
    for ln in range(max(1, lineno - lookback), lineno + 1):
        if pattern.search(raw_lines[ln - 1]):
            return True
    return False


class Linter:
    def __init__(self, root):
        self.root = root
        self.violations = []

    def report(self, path, lineno, rule, message):
        rel = os.path.relpath(path, self.root)
        self.violations.append(f"{rel}:{lineno}: [{rule}] {message}")

    def lint_file(self, path):
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        raw_lines = raw.splitlines()
        code = strip_comments_and_strings(raw)
        code_lines = code.splitlines()
        in_common = "/src/common/" in path.replace(os.sep, "/")

        self.check_mutex_members(path, raw_lines, code_lines, in_common)
        self.check_naked_new(path, raw_lines, code_lines, in_common)
        self.check_cout(path, raw_lines, code_lines)
        self.check_cow_discipline(path, raw_lines, code_lines)
        self.check_raw_sockets(path, raw_lines, code_lines)
        self.check_graph_mutation(path, raw_lines, code_lines)
        if path.endswith(".h"):
            self.check_locked_suffix(path, code_lines)
            self.check_include_guard(path, code_lines)
        if "/src/server/" in path.replace(os.sep, "/") and \
                not path.endswith(".h"):
            self.check_handler_spans(path, raw_lines, code_lines)

    # R1 + R2
    def check_mutex_members(self, path, raw_lines, code_lines, in_common):
        for lineno, line in enumerate(code_lines, 1):
            m = MUTEX_MEMBER_RE.match(line)
            if m is None:
                continue
            mutex_type, name = m.group(1), m.group(2)
            if mutex_type in RAW_MUTEX_TYPES and not in_common:
                self.report(
                    path, lineno, "annotated-mutex",
                    f"member '{name}' is a raw {mutex_type}; use "
                    "AnnotatedMutex / AnnotatedSharedMutex from "
                    "common/thread_annotations.h so the thread-safety "
                    "analysis sees it")
                continue
            has_guarded_peer = any(
                re.search(r"GUARDED_BY\(\s*" + re.escape(name) + r"\s*\)",
                          other)
                for other in code_lines)
            if not has_guarded_peer and \
                    not suppressed(raw_lines, lineno, "unguarded"):
                self.report(
                    path, lineno, "guarded-mutex",
                    f"mutex member '{name}' has no GUARDED_BY({name}) "
                    "peer; annotate the data it guards or add "
                    "`// lint: unguarded(reason)`")

    # R3
    def check_naked_new(self, path, raw_lines, code_lines, in_common):
        if in_common:
            return
        for lineno, line in enumerate(code_lines, 1):
            if "= delete" in line or "=delete" in line:
                line = re.sub(r"=\s*delete", "", line)
            flagged = None
            if NEW_RE.search(line):
                flagged = "new"
            elif DELETE_RE.search(line):
                flagged = "delete"
            if flagged and not suppressed(raw_lines, lineno, "new-ok"):
                self.report(
                    path, lineno, "no-naked-new",
                    f"naked `{flagged}` outside src/common; use "
                    "std::make_unique / containers, or add "
                    "`// lint: new-ok(reason)` for an intentional leak")

    # R4
    def check_locked_suffix(self, path, code_lines):
        for lineno, line in enumerate(code_lines, 1):
            for m in SUFFIX_DECL_RE.finditer(line):
                name = m.group(1)
                if name in ("Unlocked", "Locked"):
                    continue
                # Gather the declaration until it closes with ; or {.
                decl = line[m.start():]
                extra = lineno
                while ";" not in decl and "{" not in decl and \
                        extra < len(code_lines):
                    decl += " " + code_lines[extra]
                    extra += 1
                # Skip call sites: declarations start the statement or
                # follow a type, calls follow '=', 'return', '.', '->'.
                before = line[:m.start()].rstrip()
                if before.endswith(("=", ".", ">", "(", ",")) or \
                        before.endswith("return"):
                    continue
                if "REQUIRES" not in decl:
                    self.report(
                        path, lineno, "unlocked-suffix",
                        f"'{name}' follows the caller-holds-the-lock "
                        "naming convention but declares no REQUIRES / "
                        "REQUIRES_SHARED capability")

    # R5
    def check_cout(self, path, raw_lines, code_lines):
        for lineno, line in enumerate(code_lines, 1):
            if "std::cout" in line and \
                    not suppressed(raw_lines, lineno, "cout-ok"):
                self.report(
                    path, lineno, "no-cout",
                    "std::cout in library code; use NOUS_LOG or take an "
                    "explicit std::ostream&")

    # R9 + R10 — regex fallback for the nous-cow-discipline clang-tidy
    # check (tools/nous-tidy), so GCC-only environments still enforce
    # the COW write discipline.
    def check_cow_discipline(self, path, raw_lines, code_lines):
        norm = path.replace(os.sep, "/")
        in_cow_header = norm.endswith("graph/cow.h")
        in_cow_layer = "/src/graph/" in norm
        in_serialization = "/src/durability/" in norm
        for lineno, line in enumerate(code_lines, 1):
            if not in_cow_header and USE_COUNT_RE.search(line) and \
                    not suppressed(raw_lines, lineno, "use-count-ok"):
                self.report(
                    path, lineno, "use-count",
                    "use_count() outside graph/cow.h; refcount-exactness "
                    "reasoning is confined to the COW layer — or add "
                    "`// lint: use-count-ok(reason)`")
            if not in_cow_layer and not in_serialization and \
                    DETACH_RE.search(line) and \
                    not suppressed(raw_lines, lineno, "detach-ok"):
                self.report(
                    path, lineno, "detach-outside-cow",
                    "Detach() force-forks a COW chunk out of every "
                    "snapshot; it belongs in src/graph/ or durability "
                    "serialization — or add `// lint: detach-ok(reason)`")

    # R11
    def check_raw_sockets(self, path, raw_lines, code_lines):
        norm = path.replace(os.sep, "/")
        if "/src/replication/" in norm or \
                norm.endswith("/src/server/http_server.cc"):
            return
        for lineno, line in enumerate(code_lines, 1):
            if RAW_SOCKET_RE.search(line) and \
                    not suppressed(raw_lines, lineno, "socket-ok"):
                self.report(
                    path, lineno, "raw-socket",
                    "raw socket primitive outside src/replication/ and "
                    "src/server/http_server.cc; route bytes through "
                    "TcpConn / the HTTP server — or add "
                    "`// lint: socket-ok(reason)`")

    # R12
    def check_graph_mutation(self, path, raw_lines, code_lines):
        norm = path.replace(os.sep, "/")
        if any(part in norm for part in GRAPH_MUTATION_ALLOWED):
            return
        for lineno, line in enumerate(code_lines, 1):
            m = GRAPH_MUTATOR_RE.search(line)
            if m and not suppressed(raw_lines, lineno,
                                    "graph-mutation-ok"):
                self.report(
                    path, lineno, "graph-mutation",
                    f"direct PropertyGraph mutation '{m.group(1)}' "
                    "outside the commit path (src/graph/, "
                    "src/core/pipeline.cc, src/core/shard_set.cc); "
                    "route it through captured KgOps so shard replay "
                    "stays bit-identical — or add "
                    "`// lint: graph-mutation-ok(reason)`")

    # R8
    def check_handler_spans(self, path, raw_lines, code_lines):
        """Every `HttpResponse Class::Handle*()` definition must open a
        span (NOUS_SPAN / NOUS_SPAN_VAR) somewhere in its body."""
        for lineno, line in enumerate(code_lines, 1):
            m = HANDLER_DEF_RE.match(line)
            if m is None:
                continue
            if suppressed(raw_lines, lineno, "no-span"):
                continue
            # Walk to the end of the function body by brace matching,
            # starting at the definition line.
            depth = 0
            seen_open = False
            has_span = False
            ln = lineno
            while ln <= len(code_lines):
                body_line = code_lines[ln - 1]
                depth += body_line.count("{") - body_line.count("}")
                if "{" in body_line:
                    seen_open = True
                if seen_open and "NOUS_SPAN" in body_line:
                    has_span = True
                if seen_open and depth <= 0:
                    break
                ln += 1
            if not has_span:
                self.report(
                    path, lineno, "span-in-handler",
                    f"endpoint handler '{m.group(1)}' opens no "
                    "NOUS_SPAN, so its requests are invisible to "
                    "/api/trace; add one or `// lint: no-span(reason)`")

    # R7
    def check_tracked_build_artifacts(self):
        """Rejects build artifacts tracked by git (no-op outside git)."""
        try:
            listing = subprocess.run(
                ["git", "-C", self.root, "ls-files"],
                capture_output=True, text=True, timeout=30)
        except (OSError, subprocess.TimeoutExpired):
            return
        if listing.returncode != 0:
            return
        for rel in listing.stdout.splitlines():
            if BUILD_ARTIFACT_RE.search(rel):
                self.violations.append(
                    f"{rel}:1: [no-build-files] build artifact is "
                    "tracked by git; `git rm --cached` it (build*/ is "
                    "gitignored)")

    # R6
    def check_include_guard(self, path, code_lines):
        rel = os.path.relpath(path, os.path.join(self.root, "src"))
        expected = "NOUS_" + GUARD_TOKEN_RE.sub("_", rel).upper() + "_"
        ifndef = None
        for line in code_lines[:30]:
            m = re.match(r"\s*#\s*ifndef\s+(\w+)", line)
            if m:
                ifndef = m.group(1)
                break
        if ifndef != expected:
            got = ifndef if ifndef else "none"
            self.report(path, 1, "include-guard",
                        f"expected include guard {expected}, got {got}")
            return
        if not any(re.match(r"\s*#\s*define\s+" + re.escape(expected), l)
                   for l in code_lines[:30]):
            self.report(path, 1, "include-guard",
                        f"#ifndef {expected} has no matching #define")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    args = parser.parse_args()
    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        print(f"nous_lint: no src/ under {root}", file=sys.stderr)
        return 2

    linter = Linter(root)
    for dirpath, _, filenames in os.walk(src):
        for name in sorted(filenames):
            if name.endswith((".h", ".cc", ".cpp")):
                linter.lint_file(os.path.join(dirpath, name))
    linter.check_tracked_build_artifacts()

    for violation in linter.violations:
        print(violation)
    count = len(linter.violations)
    if count == 0:
        print("nous_lint: OK")
    else:
        print(f"nous_lint: {count} violation(s)", file=sys.stderr)
    return min(count, 125)


if __name__ == "__main__":
    sys.exit(main())
