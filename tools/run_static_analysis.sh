#!/usr/bin/env bash
# Runs every static-analysis layer the current machine supports:
#
#   1. nous_lint.py        — repo invariants (always; pure python3)
#   2. header hygiene      — every header under src/ compiles standalone
#                            (any C++ compiler)
#   3. -Wthread-safety     — Clang thread-safety analysis over src/,
#                            promoted to errors (needs clang++)
#   4. clang-tidy          — .clang-tidy check set over src/ *.cc
#                            (needs clang-tidy + compile_commands.json)
#   5. nous-tidy           — custom nous-* invariant checks: fixture
#                            corpus, then a repo-wide sweep over src/
#                            (needs the clang-tidy dev headers; absent
#                            headers SKIP with a notice even under
#                            --strict, per DESIGN.md §5.14)
#   6. clang-format        — check-only formatting diff (advisory
#                            locally, reported in CI)
#
# Layers whose tool is missing are SKIPPED with a notice by default so
# the script is useful on GCC-only boxes; `--strict` (CI) instead fails
# if a clang layer cannot run, so enforcement never silently rots.
#
# Usage: tools/run_static_analysis.sh [--strict] [--build-dir DIR]

set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-static-analysis"
STRICT=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --strict) STRICT=1 ;;
    --build-dir) BUILD_DIR="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

FAILURES=0
fail() { echo "FAIL: $*" >&2; FAILURES=$((FAILURES + 1)); }
skip() {
  if [[ $STRICT -eq 1 ]]; then
    fail "$* (required under --strict)"
  else
    echo "SKIP: $*"
  fi
}

# ---- 1. NOUS invariant linter --------------------------------------
echo "== nous_lint =="
if python3 "$ROOT/tools/nous_lint.py" --root "$ROOT"; then
  :
else
  fail "nous_lint.py reported violations"
fi

# ---- 2. Header self-containment ------------------------------------
# Each header must compile on its own (include-what-you-use at the
# file level): a translation unit consisting of just that #include.
echo "== header self-containment =="
HEADER_CXX=""
for candidate in clang++ c++ g++; do
  if command -v "$candidate" >/dev/null 2>&1; then
    HEADER_CXX="$candidate"
    break
  fi
done
if [[ -z "$HEADER_CXX" ]]; then
  skip "no C++ compiler found for header checks"
else
  HEADER_ERRORS=0
  while IFS= read -r header; do
    rel="${header#"$ROOT"/src/}"
    if ! echo "#include \"$rel\"" | "$HEADER_CXX" -std=c++20 \
        -I"$ROOT/src" -fsyntax-only -Wall -Wextra -Werror \
        -x c++ - 2>/tmp/nous_header_err.$$; then
      echo "not self-contained: src/$rel" >&2
      cat /tmp/nous_header_err.$$ >&2
      HEADER_ERRORS=$((HEADER_ERRORS + 1))
    fi
  done < <(find "$ROOT/src" -name '*.h' | sort)
  rm -f /tmp/nous_header_err.$$
  if [[ $HEADER_ERRORS -gt 0 ]]; then
    fail "$HEADER_ERRORS header(s) not self-contained"
  else
    echo "all headers self-contained ($HEADER_CXX)"
  fi
fi

# ---- 3. Clang thread-safety build ----------------------------------
echo "== clang -Wthread-safety build =="
if command -v clang++ >/dev/null 2>&1 && command -v cmake >/dev/null 2>&1
then
  if cmake -B "$BUILD_DIR" -S "$ROOT" \
        -DCMAKE_CXX_COMPILER=clang++ \
        -DCMAKE_BUILD_TYPE=Release \
        -DNOUS_WERROR=ON \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        ${CMAKE_EXTRA_ARGS:-} >/dev/null \
      && cmake --build "$BUILD_DIR" -j "$(nproc)"; then
    echo "thread-safety build clean"
  else
    fail "clang -Wthread-safety -Werror build failed"
  fi
else
  skip "clang++ not available for the thread-safety build"
fi

# ---- 4. clang-tidy --------------------------------------------------
echo "== clang-tidy =="
TIDY=""
for candidate in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
    clang-tidy-15 clang-tidy-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    TIDY="$candidate"
    break
  fi
done
if [[ -z "$TIDY" ]]; then
  skip "clang-tidy not available"
elif [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  skip "no compile_commands.json in $BUILD_DIR (clang build skipped?)"
else
  if find "$ROOT/src" -name '*.cc' | sort \
      | xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet; then
    echo "clang-tidy clean"
  else
    fail "clang-tidy reported errors"
  fi
fi

# ---- 5. nous-tidy invariant checks ----------------------------------
# The custom check suite (tools/nous-tidy) proving the snapshot /
# COW / layering / durability invariants. Unlike the layers above,
# missing *development headers* are a packaging gap, not a rot risk —
# CI installs them — so this layer SKIPs with a notice even under
# --strict when the plugin cannot be built; every other failure
# (fixtures diverging, real findings in src/) is fatal.
echo "== nous-tidy invariant checks =="
NOUS_TIDY_SO=""
for so in "$BUILD_DIR/tools/nous-tidy/libnous-tidy.so" \
    "$BUILD_DIR/tools/nous-tidy/nous-tidy.so"; do
  if [[ -f "$so" ]]; then
    NOUS_TIDY_SO="$so"
    break
  fi
done
if [[ -z "$NOUS_TIDY_SO" || -z "$TIDY" ]]; then
  echo "SKIP: nous-tidy plugin not built (clang-tidy dev headers absent?)"
  echo "NOTICE: the nous-* invariant checks did not run; CI runs them."
else
  if python3 "$ROOT/tools/nous-tidy/run_fixture_tests.py" \
      --plugin "$NOUS_TIDY_SO" --clang-tidy "$TIDY" \
      --fixtures "$ROOT/tools/nous-tidy/fixtures" --repo-root "$ROOT"; then
    echo "nous-tidy fixtures clean"
  else
    fail "nous-tidy fixture corpus diverged from the checks"
  fi
  if find "$ROOT/src" -name '*.cc' | sort \
      | xargs -P "$(nproc)" -n 4 "$TIDY" -p "$BUILD_DIR" --quiet \
          --load "$NOUS_TIDY_SO" "--checks=-*,nous-*" \
          "--warnings-as-errors=nous-*"; then
    echo "nous-tidy repo sweep clean (zero findings in src/)"
  else
    fail "nous-tidy found invariant violations in src/"
  fi
fi

# ---- 6. clang-format (advisory) ------------------------------------
echo "== clang-format (check only) =="
FORMAT=""
for candidate in clang-format clang-format-18 clang-format-17 \
    clang-format-16 clang-format-15 clang-format-14; do
  if command -v "$candidate" >/dev/null 2>&1; then
    FORMAT="$candidate"
    break
  fi
done
if [[ -z "$FORMAT" ]]; then
  echo "SKIP: clang-format not available"
elif find "$ROOT/src" "$ROOT/tests" "$ROOT/examples" "$ROOT/bench" \
      \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) 2>/dev/null \
    | sort | xargs "$FORMAT" --dry-run -Werror 2>/dev/null; then
  echo "formatting clean"
else
  # Advisory even in CI: formatting drift is visible, never blocking.
  echo "NOTE: formatting drift detected ($FORMAT --dry-run); run"
  echo "      $FORMAT -i over the files above to fix"
fi

echo
if [[ $FAILURES -gt 0 ]]; then
  echo "static analysis: $FAILURES layer(s) failed"
  exit 1
fi
echo "static analysis: all runnable layers clean"
