//===--- NousTidyUtils.cc - shared helpers for the nous-* checks ----------===//

#include "NousTidyUtils.h"

#include <algorithm>

#include "clang/AST/DeclCXX.h"
#include "clang/AST/ExprCXX.h"

namespace clang {
namespace tidy {
namespace nous {

std::string FileOf(const SourceManager &SM, SourceLocation Loc) {
  if (Loc.isInvalid())
    return std::string();
  std::string Out = SM.getFilename(SM.getExpansionLoc(Loc)).str();
  std::replace(Out.begin(), Out.end(), '\\', '/');
  return Out;
}

llvm::SmallVector<llvm::StringRef, 8> SplitList(llvm::StringRef List) {
  llvm::SmallVector<llvm::StringRef, 8> Out;
  List.split(Out, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  return Out;
}

bool PathContainsAny(llvm::StringRef Path,
                     llvm::ArrayRef<llvm::StringRef> Substrs) {
  for (llvm::StringRef S : Substrs)
    if (Path.contains(S))
      return true;
  return false;
}

bool EndsWith(llvm::StringRef S, llvm::StringRef Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}

const CXXRecordDecl *StrippedRecord(QualType T) {
  if (T.isNull())
    return nullptr;
  QualType Cur = T.getCanonicalType();
  if (Cur->isReferenceType())
    Cur = Cur->getPointeeType();
  // Strip pointer layers (covers shared_ptr::operator-> results).
  while (Cur->isPointerType())
    Cur = Cur->getPointeeType();
  return Cur->getAsCXXRecordDecl();
}

bool RootedAtRecord(const Expr *E, llvm::StringRef QualifiedName) {
  const Expr *Cur = E;
  // Bounded walk; real member chains are shallow.
  for (int Depth = 0; Cur != nullptr && Depth < 64; ++Depth) {
    Cur = Cur->IgnoreParenImpCasts();
    if (const CXXRecordDecl *RD = StrippedRecord(Cur->getType()))
      if (QualifiedName == RD->getQualifiedNameAsString())
        return true;
    if (const auto *ME = dyn_cast<MemberExpr>(Cur)) {
      Cur = ME->getBase();
      continue;
    }
    if (const auto *MC = dyn_cast<CXXMemberCallExpr>(Cur)) {
      Cur = MC->getImplicitObjectArgument();
      continue;
    }
    if (const auto *OC = dyn_cast<CXXOperatorCallExpr>(Cur)) {
      // operator->, operator*, operator[] — the object is arg 0.
      if (OC->getNumArgs() == 0)
        return false;
      Cur = OC->getArg(0);
      continue;
    }
    if (const auto *ASE = dyn_cast<ArraySubscriptExpr>(Cur)) {
      Cur = ASE->getBase();
      continue;
    }
    if (const auto *UO = dyn_cast<UnaryOperator>(Cur)) {
      if (UO->getOpcode() == UO_Deref || UO->getOpcode() == UO_AddrOf) {
        Cur = UO->getSubExpr();
        continue;
      }
      return false;
    }
    if (const auto *CE = dyn_cast<ExplicitCastExpr>(Cur)) {
      Cur = CE->getSubExpr();
      continue;
    }
    return false;
  }
  return false;
}

} // namespace nous
} // namespace tidy
} // namespace clang
