//===--- SnapshotMutationCheck.cc - nous-snapshot-mutation ----------------===//

#include "SnapshotMutationCheck.h"

#include "NousTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nous {

SnapshotMutationCheck::SnapshotMutationCheck(StringRef Name,
                                             ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      SnapshotTypes(Options.get("SnapshotTypes",
                                "nous::KgSnapshot;nous::RenderedPatternSet")),
      BuilderPaths(
          Options.get("BuilderPaths", "/src/core/pipeline;/src/core/snapshot")) {
  SnapshotTypesVec = SplitList(SnapshotTypes);
  BuilderPathsVec = SplitList(BuilderPaths);
}

void SnapshotMutationCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "SnapshotTypes", SnapshotTypes);
  Options.store(Opts, "BuilderPaths", BuilderPaths);
}

void SnapshotMutationCheck::registerMatchers(MatchFinder *Finder) {
  // The snapshot types' own member functions (constructor helpers,
  // accessors) legitimately touch their members.
  auto NotSnapshotInternal = unless(forFunction(cxxMethodDecl(ofClass(
      hasAnyName("::nous::KgSnapshot", "::nous::RenderedPatternSet")))));

  Finder->addMatcher(cxxMemberCallExpr(callee(cxxMethodDecl(unless(isConst()))),
                                       NotSnapshotInternal)
                         .bind("mutating-call"),
                     this);
  Finder->addMatcher(cxxConstCastExpr().bind("const-cast"), this);
  Finder->addMatcher(
      varDecl(hasInitializer(expr())).bind("escape-var"), this);
  Finder->addMatcher(unaryOperator(hasOperatorName("&")).bind("addr-of"),
                     this);
}

void SnapshotMutationCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Call =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("mutating-call")) {
    const Expr *Obj = Call->getImplicitObjectArgument();
    if (Obj == nullptr)
      return;
    if (PathContainsAny(FileOf(SM, Call->getBeginLoc()), BuilderPathsVec))
      return;
    for (llvm::StringRef Type : SnapshotTypesVec) {
      if (RootedAtRecord(Obj, Type)) {
        diag(Call->getExprLoc(),
             "non-const call to %0 mutates state reachable from a %1; "
             "published snapshots are deeply immutable (DESIGN.md §5.14)")
            << Call->getMethodDecl() << Type;
        return;
      }
    }
    return;
  }

  if (const auto *Cast =
          Result.Nodes.getNodeAs<CXXConstCastExpr>("const-cast")) {
    if (PathContainsAny(FileOf(SM, Cast->getBeginLoc()), BuilderPathsVec))
      return;
    const CXXRecordDecl *Dest = StrippedRecord(Cast->getTypeAsWritten());
    const std::string DestName =
        Dest != nullptr ? Dest->getQualifiedNameAsString() : std::string();
    for (llvm::StringRef Type : SnapshotTypesVec) {
      if (Type == DestName || RootedAtRecord(Cast->getSubExpr(), Type)) {
        diag(Cast->getExprLoc(),
             "const_cast on snapshot-reachable state (%0) defeats the "
             "snapshot immutability contract (DESIGN.md §5.14)")
            << Type;
        return;
      }
    }
    return;
  }

  if (const auto *Var = Result.Nodes.getNodeAs<VarDecl>("escape-var")) {
    const QualType T = Var->getType();
    const bool NonConstRef = T->isLValueReferenceType() &&
                             !T.getNonReferenceType().isConstQualified();
    const bool NonConstPtr =
        T->isPointerType() && !T->getPointeeType().isConstQualified();
    if (!NonConstRef && !NonConstPtr)
      return;
    const Expr *Init = Var->getInit();
    if (Init == nullptr)
      return;
    if (PathContainsAny(FileOf(SM, Var->getLocation()), BuilderPathsVec))
      return;
    for (llvm::StringRef Type : SnapshotTypesVec) {
      if (RootedAtRecord(Init, Type)) {
        diag(Var->getLocation(),
             "%0 binds a non-const %select{reference|pointer}1 to state "
             "reachable from a %2; snapshot state must not escape its "
             "const shell (DESIGN.md §5.14)")
            << Var << (NonConstRef ? 0 : 1) << Type;
        return;
      }
    }
    return;
  }

  if (const auto *AddrOf = Result.Nodes.getNodeAs<UnaryOperator>("addr-of")) {
    const Expr *Operand = AddrOf->getSubExpr();
    if (Operand == nullptr || Operand->getType().isConstQualified())
      return;
    if (PathContainsAny(FileOf(SM, AddrOf->getOperatorLoc()), BuilderPathsVec))
      return;
    for (llvm::StringRef Type : SnapshotTypesVec) {
      if (RootedAtRecord(Operand, Type)) {
        diag(AddrOf->getOperatorLoc(),
             "taking a non-const pointer into state reachable from a %0; "
             "snapshot state must not escape its const shell "
             "(DESIGN.md §5.14)")
            << Type;
        return;
      }
    }
    return;
  }
}

} // namespace nous
} // namespace tidy
} // namespace clang
