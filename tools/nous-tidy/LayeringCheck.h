//===--- LayeringCheck.h - nous-layering ----------------------------------===//

#ifndef NOUS_TOOLS_NOUS_TIDY_LAYERING_CHECK_H_
#define NOUS_TOOLS_NOUS_TIDY_LAYERING_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace nous {

/// Proves the ingest-funnel invariant (DESIGN.md §5.14): direct
/// mutation of the PropertyGraph or a Dictionary is confined to the
/// pipeline commit path, the durability layer (recovery/checkpoint
/// load) and the graph layer itself. Everything else — qa, server,
/// topic, miner — consumes graphs read-only; that is what makes the
/// WAL complete (every mutation was logged first) and the snapshot
/// diff exact.
///
/// Flags any non-const member call (including non-const accessor
/// overloads like PropertyGraph::types()) on the listed types outside
/// the allowed paths. The one justified exception, entity creation in
/// src/linker/entity_linker.cc (runs only under the commit path's
/// lock, post-WAL), carries NOLINT(nous-layering) with a comment.
///
/// Options:
///  * MutableTypes — semicolon list
///    (default "nous::PropertyGraph;nous::Dictionary").
///  * AllowedPaths — path substrings where mutation is legitimate
///    (default "/src/core/pipeline;/src/durability/;/src/graph/").
class LayeringCheck : public ClangTidyCheck {
public:
  LayeringCheck(StringRef Name, ClangTidyContext *Context);
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string MutableTypes;
  const std::string AllowedPaths;
  llvm::SmallVector<llvm::StringRef, 8> MutableTypesVec;
  llvm::SmallVector<llvm::StringRef, 8> AllowedPathsVec;
};

} // namespace nous
} // namespace tidy
} // namespace clang

#endif // NOUS_TOOLS_NOUS_TIDY_LAYERING_CHECK_H_
