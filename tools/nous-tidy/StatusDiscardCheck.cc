//===--- StatusDiscardCheck.cc - nous-status-discard ----------------------===//

#include "StatusDiscardCheck.h"

#include "NousTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nous {

StatusDiscardCheck::StatusDiscardCheck(StringRef Name,
                                       ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      StatusTypes(Options.get("StatusTypes", "nous::Status;nous::Result")) {
  StatusTypesVec = SplitList(StatusTypes);
}

void StatusDiscardCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "StatusTypes", StatusTypes);
}

void StatusDiscardCheck::registerMatchers(MatchFinder *Finder) {
  // Filtering by return type happens in check(): the type list is a
  // runtime option, and Result<T> is a template whose specializations
  // are easiest to compare by qualified name.
  Finder->addMatcher(
      callExpr(unless(isExpansionInSystemHeader())).bind("call"), this);
}

// Climbs from `Call` to decide whether its value is consumed. Walks
// through wrappers that merely forward the value (parens, implicit
// casts, temporaries, ternary arms, comma RHS, non-void explicit
// casts); reaching statement position means the Status was dropped.
bool StatusDiscardCheck::isDiscarded(const Expr *Call, ASTContext &Ctx) const {
  const Stmt *Child = Call;
  for (int Depth = 0; Depth < 64; ++Depth) {
    const auto Parents = Ctx.getParents(*Child);
    if (Parents.empty())
      return false;
    const Stmt *PS = Parents[0].get<Stmt>();
    if (PS == nullptr)
      return false; // declaration initializer, etc. — consumed
    if (isa<CompoundStmt>(PS) || isa<LabelStmt>(PS) || isa<CaseStmt>(PS) ||
        isa<DefaultStmt>(PS))
      return true; // expression-statement position
    if (isa<ParenExpr>(PS) || isa<ImplicitCastExpr>(PS) ||
        isa<ExprWithCleanups>(PS) || isa<ConstantExpr>(PS) ||
        isa<CXXBindTemporaryExpr>(PS) || isa<MaterializeTemporaryExpr>(PS)) {
      Child = PS;
      continue;
    }
    if (const auto *CO = dyn_cast<ConditionalOperator>(PS)) {
      if (CO->getCond() == Child)
        return false; // condition value is consumed
      Child = CO;     // arm value flows to the ternary's result
      continue;
    }
    if (const auto *BO = dyn_cast<BinaryOperator>(PS)) {
      if (BO->getOpcode() == BO_Comma && BO->getRHS() == Child) {
        Child = BO; // comma result is the RHS — keep climbing
        continue;
      }
      return false;
    }
    if (const auto *Cast = dyn_cast<ExplicitCastExpr>(PS)) {
      if (Cast->getTypeAsWritten()->isVoidType())
        return false; // (void)expr — explicit, intentional discard
      Child = Cast;   // e.g. static_cast<Status>(...) still owes a consumer
      continue;
    }
    if (const auto *If = dyn_cast<IfStmt>(PS))
      return If->getCond() != Child;
    if (const auto *While = dyn_cast<WhileStmt>(PS))
      return While->getCond() != Child;
    if (const auto *Do = dyn_cast<DoStmt>(PS))
      return Do->getCond() != Child;
    if (const auto *For = dyn_cast<ForStmt>(PS))
      return For->getCond() != Child; // init/increment position discards
    return false; // call argument, return value, member base, ... — consumed
  }
  return false;
}

void StatusDiscardCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
  if (Call == nullptr || !Call->isPRValue())
    return; // reference returns don't transfer ownership of the error
  const CXXRecordDecl *RD = StrippedRecord(Call->getType());
  if (RD == nullptr)
    return;
  const std::string Name = RD->getQualifiedNameAsString();
  bool Tracked = false;
  for (llvm::StringRef Type : StatusTypesVec)
    Tracked = Tracked || Type == Name;
  if (!Tracked || !isDiscarded(Call, *Result.Context))
    return;
  const FunctionDecl *Callee = Call->getDirectCallee();
  if (Callee != nullptr) {
    diag(Call->getExprLoc(),
         "%0 returned by %1 is discarded; handle it, propagate it "
         "(NOUS_RETURN_IF_ERROR / NOUS_CHECK_OK), or discard explicitly "
         "with (void) and a comment")
        << Name << Callee;
  } else {
    diag(Call->getExprLoc(),
         "%0 returned by this call is discarded; handle it, propagate it "
         "(NOUS_RETURN_IF_ERROR / NOUS_CHECK_OK), or discard explicitly "
         "with (void) and a comment")
        << Name;
  }
}

} // namespace nous
} // namespace tidy
} // namespace clang
