#!/usr/bin/env python3
"""Fixture harness for the nous-tidy clang-tidy checks.

Runs every fixture translation unit under ``fixtures/<check-slug>/``
through ``clang-tidy -load libnous-tidy.so`` with exactly that one
check enabled, then verifies the findings:

* lines containing ``// expect: SUBSTR`` declare that SUBSTR must
  appear somewhere in clang-tidy's output for the file (one line per
  expected finding — positive fixtures);
* files with no ``expect`` lines are negative fixtures and must
  produce **zero** ``[nous-...]`` warnings.

Fixtures exercise the checks' path sensitivity by living under magic
subpaths (``.../src/graph/``, ``.../src/server/``, ...): the checks
match path substrings, so the corpus needs no per-check options.

Exit codes: 0 all fixtures pass, 1 mismatches, 77 toolchain missing
(consumed by ctest's SKIP_RETURN_CODE so the test SKIPs, not fails).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

SKIP = 77
EXPECT_RE = re.compile(r"//\s*expect:\s*(.+?)\s*$")
NOUS_WARNING_RE = re.compile(r"warning:.*\[nous-[a-z-]+\]")


def parse_args():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--plugin", default="", help="path to libnous-tidy.so")
    p.add_argument("--clang-tidy", default="", help="clang-tidy binary")
    p.add_argument("--fixtures", required=True, help="fixture corpus root")
    p.add_argument("--repo-root", required=True, help="repository root")
    p.add_argument(
        "--missing-toolchain",
        action="store_true",
        help="emitted by CMake when the plugin could not be built",
    )
    p.add_argument("--verbose", action="store_true")
    return p.parse_args()


def skip(msg):
    print(f"SKIP: {msg}")
    print(
        "SKIP: install the clang-tidy development headers (Debian/Ubuntu: "
        "clang-tidy-NN + libclang-NN-dev + llvm-NN-dev) and reconfigure to "
        "run the nous-tidy fixture suite."
    )
    sys.exit(SKIP)


def check_name_for(fixture_root, path):
    """fixtures/<slug>/... -> nous-<slug>."""
    rel = os.path.relpath(path, fixture_root)
    slug = rel.split(os.sep)[0]
    return f"nous-{slug}"


def run_one(args, path, check):
    cmd = [
        args.clang_tidy,
        "--load",
        args.plugin,
        f"--checks=-*,{check}",
        "--quiet",
        path,
        "--",
        "-std=c++20",
        f"-I{os.path.join(args.repo_root, 'src')}",
        "-Wno-everything",
    ]
    proc = subprocess.run(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def main():
    args = parse_args()
    if args.missing_toolchain:
        skip("nous-tidy plugin was not built (clang-tidy dev headers absent)")
    if not args.plugin or not os.path.exists(args.plugin):
        skip(f"plugin not found: {args.plugin!r}")
    resolved = shutil.which(args.clang_tidy) if args.clang_tidy else None
    if resolved is None:
        skip(f"clang-tidy binary not found: {args.clang_tidy!r}")
    args.clang_tidy = resolved

    fixture_root = os.path.abspath(args.fixtures)
    fixtures = []
    for dirpath, _, files in os.walk(fixture_root):
        for name in sorted(files):
            if name.endswith(".cc") or name.endswith(".cpp"):
                fixtures.append(os.path.join(dirpath, name))
    fixtures.sort()
    if not fixtures:
        print(f"FAIL: no fixtures found under {fixture_root}")
        return 1

    # A smoke run first: a plugin built against mismatched headers
    # fails at dlopen with a loader error, which should read as a
    # failure of the environment, not of any one fixture.
    rc, out = run_one(args, fixtures[0], "nous-status-discard")
    if "Error opening" in out or "undefined symbol" in out:
        print(out)
        skip("clang-tidy could not load the nous-tidy plugin (ABI mismatch?)")

    failures = 0
    for path in fixtures:
        check = check_name_for(fixture_root, path)
        with open(path, encoding="utf-8") as fh:
            expects = EXPECT_RE.findall(fh.read())
        rc, out = run_one(args, path, check)
        rel = os.path.relpath(path, fixture_root)
        problems = []
        if rc != 0:
            problems.append(f"clang-tidy exited {rc} (compile error?)")
        for want in expects:
            if want not in out:
                problems.append(f"missing expected finding: {want!r}")
        if not expects:
            stray = [l for l in out.splitlines() if NOUS_WARNING_RE.search(l)]
            for line in stray:
                problems.append(f"unexpected finding: {line.strip()}")
        if problems:
            failures += 1
            print(f"FAIL {rel} [{check}]")
            for prob in problems:
                print(f"  - {prob}")
            print("  --- clang-tidy output ---")
            for line in out.splitlines():
                print(f"  | {line}")
        else:
            kind = f"{len(expects)} finding(s)" if expects else "clean"
            print(f"PASS {rel} [{check}] ({kind})")
            if args.verbose and out.strip():
                for line in out.splitlines():
                    print(f"  | {line}")

    print(
        f"nous-tidy fixtures: {len(fixtures) - failures}/{len(fixtures)} passed"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
