//===--- CowDisciplineCheck.cc - nous-cow-discipline ----------------------===//

#include "CowDisciplineCheck.h"

#include "NousTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nous {

CowDisciplineCheck::CowDisciplineCheck(StringRef Name,
                                       ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedPaths(Options.get("AllowedPaths", "/src/graph/")),
      CowHeader(Options.get("CowHeader", "graph/cow.h")) {
  AllowedPathsVec = SplitList(AllowedPaths);
}

void CowDisciplineCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedPaths", AllowedPaths);
  Options.store(Opts, "CowHeader", CowHeader);
}

void CowDisciplineCheck::registerMatchers(MatchFinder *Finder) {
  // Any non-const member call on a COW container counts as a mutation;
  // matching by constness (rather than an explicit mutator-name list)
  // keeps the check correct when new mutators are added.
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(unless(isConst()),
                               ofClass(cxxRecordDecl(hasAnyName(
                                   "::nous::CowVec", "::nous::CowIdIndex"))))),
          forFunction(functionDecl().bind("enclosing")))
          .bind("cow-mutation"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(hasName("use_count"))))
          .bind("use-count"),
      this);
}

void CowDisciplineCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;

  if (const auto *Call =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("cow-mutation")) {
    if (PathContainsAny(FileOf(SM, Call->getBeginLoc()), AllowedPathsVec))
      return;
    const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("enclosing");
    if (Fn != nullptr && Fn->hasAttr<RequiresCapabilityAttr>())
      return;
    diag(Call->getExprLoc(),
         "COW mutation %0 outside src/graph/ must be in a function with a "
         "REQUIRES(...) annotation: unshare exactness (use_count()==1 means "
         "sole owner) is only sound under the pipeline writer lock "
         "(DESIGN.md §5.14)")
        << Call->getMethodDecl();
    return;
  }

  if (const auto *Call =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("use-count")) {
    const std::string File = FileOf(SM, Call->getBeginLoc());
    if (EndsWith(File, CowHeader))
      return;
    diag(Call->getExprLoc(),
         "use_count() outside %0: refcount-exactness reasoning is confined "
         "to the COW layer; consume CowCounters / Footprint instead "
         "(DESIGN.md §5.14)")
        << CowHeader;
    return;
  }
}

} // namespace nous
} // namespace tidy
} // namespace clang
