//===--- CowDisciplineCheck.h - nous-cow-discipline -----------------------===//

#ifndef NOUS_TOOLS_NOUS_TIDY_COW_DISCIPLINE_CHECK_H_
#define NOUS_TOOLS_NOUS_TIDY_COW_DISCIPLINE_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace nous {

/// Proves the COW write-discipline invariant (DESIGN.md §5.13/§5.14):
/// CowVec / CowIdIndex mutators (Mutable, PushBack, Resize, Assign,
/// Clear, Detach, Insert, ...) rely on use_count()==1 meaning "sole
/// owner", which is only sound while the pipeline's writer lock
/// serializes writers against snapshot publication. Two rules:
///
///  * any non-const member call on a CowVec/CowIdIndex must occur
///    either inside src/graph/ (the COW layer itself and the graph
///    that owns the chunks) or inside a function carrying a
///    REQUIRES(...) thread-safety annotation, so the lock the
///    refcount argument depends on is visible to the analysis;
///  * use_count() must not be called outside graph/cow.h — refcount
///    exactness reasoning is confined to the COW layer (mirrored by
///    nous_lint rule R9 for GCC-only environments).
///
/// Options:
///  * CowTypes — semicolon list (default "nous::CowVec;nous::CowIdIndex").
///  * AllowedPaths — path substrings exempt from the annotation rule
///    (default "/src/graph/").
///  * CowHeader — file suffix where use_count() is legitimate
///    (default "graph/cow.h").
class CowDisciplineCheck : public ClangTidyCheck {
public:
  CowDisciplineCheck(StringRef Name, ClangTidyContext *Context);
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string AllowedPaths;
  const std::string CowHeader;
  llvm::SmallVector<llvm::StringRef, 8> AllowedPathsVec;
};

} // namespace nous
} // namespace tidy
} // namespace clang

#endif // NOUS_TOOLS_NOUS_TIDY_COW_DISCIPLINE_CHECK_H_
