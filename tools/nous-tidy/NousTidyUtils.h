//===--- NousTidyUtils.h - shared helpers for the nous-* checks -----------===//
//
// Small AST/path helpers shared by the five nous-tidy checks. Kept
// deliberately conservative: everything here compiles against the
// stable clang-tidy plugin surface of LLVM 14 through 19.
//
//===----------------------------------------------------------------------===//

#ifndef NOUS_TOOLS_NOUS_TIDY_NOUS_TIDY_UTILS_H_
#define NOUS_TOOLS_NOUS_TIDY_NOUS_TIDY_UTILS_H_

#include <string>

#include "clang/AST/Expr.h"
#include "clang/AST/Type.h"
#include "clang/Basic/SourceLocation.h"
#include "clang/Basic/SourceManager.h"
#include "llvm/ADT/ArrayRef.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace nous {

/// Forward-slash-normalized path of the file containing `Loc`
/// (expansion location). Empty for invalid locations.
std::string FileOf(const SourceManager &SM, SourceLocation Loc);

/// Splits a semicolon-separated option list, dropping empty entries.
/// The returned StringRefs alias `List`, which must outlive them.
llvm::SmallVector<llvm::StringRef, 8> SplitList(llvm::StringRef List);

/// Whether `Path` contains any entry of `Substrs` as a substring.
bool PathContainsAny(llvm::StringRef Path,
                     llvm::ArrayRef<llvm::StringRef> Substrs);

/// Version-proof StringRef suffix test (endswith/ends_with churn).
bool EndsWith(llvm::StringRef S, llvm::StringRef Suffix);

/// The record declaration behind `T` after stripping references,
/// pointers, const and sugar; null when `T` is not a record type.
const CXXRecordDecl *StrippedRecord(QualType T);

/// Whether the member-access chain `E` is rooted at an object whose
/// type is the record with qualified name `QualifiedName` (written
/// without a leading `::`, e.g. "nous::KgSnapshot"). Walks through
/// member accesses, accessor calls (member and overloaded-operator
/// calls such as shared_ptr::operator->), dereferences, array
/// subscripts, casts and parentheses. This is how the checks see
/// through the const-propagating KgSnapshot accessors: `snap->graph()`
/// is rooted at nous::KgSnapshot no matter how many hops deep.
bool RootedAtRecord(const Expr *E, llvm::StringRef QualifiedName);

} // namespace nous
} // namespace tidy
} // namespace clang

#endif // NOUS_TOOLS_NOUS_TIDY_NOUS_TIDY_UTILS_H_
