//===--- LayeringCheck.cc - nous-layering ---------------------------------===//

#include "LayeringCheck.h"

#include "NousTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nous {

LayeringCheck::LayeringCheck(StringRef Name, ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      MutableTypes(
          Options.get("MutableTypes", "nous::PropertyGraph;nous::Dictionary")),
      AllowedPaths(Options.get(
          "AllowedPaths", "/src/core/pipeline;/src/durability/;/src/graph/")) {
  MutableTypesVec = SplitList(MutableTypes);
  AllowedPathsVec = SplitList(AllowedPaths);
}

void LayeringCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "MutableTypes", MutableTypes);
  Options.store(Opts, "AllowedPaths", AllowedPaths);
}

void LayeringCheck::registerMatchers(MatchFinder *Finder) {
  // The guarded type list is a runtime option, so the matcher casts a
  // wide net (any non-const member or operator call) and check()
  // filters by the callee's class. Methods of the guarded types
  // themselves are exempt — PropertyGraph mutating its own Dictionary
  // is the graph layer's business.
  auto NotOwnMethod = unless(forFunction(cxxMethodDecl(
      ofClass(hasAnyName("::nous::PropertyGraph", "::nous::Dictionary")))));
  Finder->addMatcher(
      cxxMemberCallExpr(callee(cxxMethodDecl(unless(isConst()))), NotOwnMethod)
          .bind("mutation"),
      this);
  Finder->addMatcher(cxxOperatorCallExpr(callee(cxxMethodDecl(unless(isConst()))),
                                         NotOwnMethod)
                         .bind("mutation"),
                     this);
}

void LayeringCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CallExpr>("mutation");
  if (Call == nullptr)
    return;
  const auto *Method = dyn_cast_or_null<CXXMethodDecl>(Call->getDirectCallee());
  if (Method == nullptr || Method->getParent() == nullptr)
    return;
  const std::string ClassName = Method->getParent()->getQualifiedNameAsString();
  bool Guarded = false;
  for (llvm::StringRef Type : MutableTypesVec)
    Guarded = Guarded || Type == ClassName;
  if (!Guarded)
    return;
  const std::string File = FileOf(*Result.SourceManager, Call->getBeginLoc());
  if (PathContainsAny(File, AllowedPathsVec))
    return;
  diag(Call->getExprLoc(),
       "non-const call to %0 of %1 outside the ingest funnel (allowed "
       "paths: %2); KG mutation is confined to the pipeline commit path, "
       "durability recovery and the graph layer so the WAL stays complete "
       "(DESIGN.md §5.14)")
      << Method << ClassName << AllowedPaths;
}

} // namespace nous
} // namespace tidy
} // namespace clang
