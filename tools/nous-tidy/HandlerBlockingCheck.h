//===--- HandlerBlockingCheck.h - nous-handler-blocking -------------------===//

#ifndef NOUS_TOOLS_NOUS_TIDY_HANDLER_BLOCKING_CHECK_H_
#define NOUS_TOOLS_NOUS_TIDY_HANDLER_BLOCKING_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace nous {

/// Proves the serving-latency invariant (DESIGN.md §5.11/§5.14): HTTP
/// request handlers (Handle* functions under src/server/) serve off
/// published snapshots and must never
///
///  * take the KG writer lock (WriterMutexLock construction, or a raw
///    exclusive lock()/try_lock() on an AnnotatedSharedMutex) — one
///    slow handler would stall every reader and the ingest path; or
///  * call fsync-path durability primitives (WalWriter append/sync,
///    DurabilityManager checkpointing, AtomicWriteFile/FsyncParentDir,
///    Nous::Checkpoint/EnableDurability/Recover) — disk latency would
///    ride on the request path.
///
/// Handlers that need durable ingest delegate to the Nous facade
/// (e.g. IngestText), which owns its locking and WAL discipline;
/// bounded bookkeeping locks (MutexLock/UniqueLock on plain
/// AnnotatedMutex) stay allowed.
///
/// Options:
///  * HandlerPaths — path substrings identifying the serving layer
///    (default "/src/server/").
class HandlerBlockingCheck : public ClangTidyCheck {
public:
  HandlerBlockingCheck(StringRef Name, ClangTidyContext *Context);
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string HandlerPaths;
  llvm::SmallVector<llvm::StringRef, 8> HandlerPathsVec;
};

} // namespace nous
} // namespace tidy
} // namespace clang

#endif // NOUS_TOOLS_NOUS_TIDY_HANDLER_BLOCKING_CHECK_H_
