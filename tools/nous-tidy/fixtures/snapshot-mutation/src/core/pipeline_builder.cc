// Negative fixture: this file's path contains "/src/core/pipeline",
// the builder path where pre-publish construction of a
// RenderedPatternSet is legitimate (the pipeline renders patterns
// into a fresh set before handing it to a snapshot).
#include <memory>
#include <utility>

#include "core/snapshot.h"

namespace nous {

std::shared_ptr<const RenderedPatternSet> BuildFreshSet(uint64_t generation) {
  auto fresh = std::make_shared<RenderedPatternSet>();
  fresh->miner_generation = generation;
  fresh->patterns.clear();  // pre-publish mutation: allowed here
  return std::move(fresh);
}

}  // namespace nous
