// Positive fixtures for nous-snapshot-mutation: every way of touching
// snapshot-reachable state after publish must be flagged.
#include <memory>

#include "core/snapshot.h"

namespace nous {

void CastAwayGraphConst(std::shared_ptr<const KgSnapshot> snap) {
  // expect: const_cast on snapshot-reachable state
  // expect: binds a non-const reference
  PropertyGraph& g = const_cast<PropertyGraph&>(snap->graph());
  (void)g;
}

void MutateThroughCastChain(std::shared_ptr<const KgSnapshot> snap) {
  // The cast and the non-const call are two separate violations.
  // expect: non-const call to 'clear'
  const_cast<RenderedPatternSet&>(*snap->pattern_set()).patterns.clear();
}

void MutateRenderedSetDirectly(RenderedPatternSet& set) {
  // A mutable RenderedPatternSet outside the pipeline builder is
  // itself a violation: published sets are shared across snapshots.
  // expect: mutates state reachable from a nous::RenderedPatternSet
  set.patterns.clear();
}

void EscapeStatsPointer(std::shared_ptr<const KgSnapshot> snap) {
  // expect: binds a non-const pointer
  PipelineStats* stats = const_cast<PipelineStats*>(&snap->stats());
  (void)stats;
}

}  // namespace nous
