// Negative fixtures for nous-snapshot-mutation: ordinary read-only
// snapshot consumption — including non-const operations on the
// *handle* rather than the snapshot — must stay clean.
#include <cstddef>
#include <memory>
#include <vector>

#include "core/snapshot.h"

namespace nous {

size_t ReadOnlyUse(std::shared_ptr<const KgSnapshot> snap) {
  if (snap == nullptr) return 0;
  const PropertyGraph& g = snap->graph();       // const bind: fine
  const auto& patterns = snap->patterns();      // const accessor chain
  size_t n = g.NumVertices() + patterns.size();
  n += static_cast<size_t>(snap->version());
  n += snap->approx_graph_bytes();

  // Non-const calls on the shared_ptr handle are not snapshot
  // mutations: resetting a local copy never touches published state.
  std::shared_ptr<const KgSnapshot> keep = snap;
  keep.reset();

  // Collections of handles are equally fine.
  std::vector<std::shared_ptr<const KgSnapshot>> held;
  held.push_back(snap);
  held.clear();
  return n;
}

}  // namespace nous
