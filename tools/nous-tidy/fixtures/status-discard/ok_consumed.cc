// Negative fixtures for nous-status-discard: every legitimate way of
// consuming a Status/Result must stay clean, including the explicit
// (void) opt-out and the repo's propagation macros.
#include <utility>

#include "common/result.h"
#include "common/status.h"

namespace nous {

Status Fallible();
Result<int> FallibleValue();

Status ConsumeEverywhere(bool flag) {
  Status bound = Fallible();              // bound to a variable
  NOUS_RETURN_IF_ERROR(Fallible());       // propagation macro
  if (!Fallible().ok()) {                 // member access consumes it
    return bound;
  }
  bool both = flag && Fallible().ok();    // condition operand
  (void)Fallible();                       // explicit discard: allowed
  Result<int> r = FallibleValue();        // Result bound
  if (r.ok() && both) {
    return Status::Ok();
  }
  return flag ? Fallible() : std::move(bound);  // ternary as return value
}

}  // namespace nous
