// Positive fixtures for nous-status-discard: discards the builtin
// [[nodiscard]] warning misses (plus the plain one, for coverage —
// the fixture harness compiles with -Wno-everything, so only the
// tidy check reports here).
#include "common/status.h"

namespace nous {

Status Fallible();
Status Fallible2();

void LaunderedDiscards(bool flaky) {
  // expect: returned by 'Fallible' is discarded
  Fallible();

  // Ternary in statement position: both arms are dropped.
  // expect: returned by 'Fallible2' is discarded
  flaky ? Fallible() : Fallible2();

  // A cast that still yields a Status does not consume the error.
  // expect: nous::Status returned by 'Fallible' is discarded
  static_cast<Status>(Fallible());

  // Comma-operator RHS is the expression's value — still dropped.
  (Fallible2(), Fallible());

  // For-increment position discards.
  for (int i = 0; i < 2; Fallible2()) {
    ++i;
  }
}

}  // namespace nous
