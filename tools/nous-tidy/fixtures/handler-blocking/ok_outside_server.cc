// Negative fixture: a Handle* function outside the serving layer
// (this file is not under /src/server/) may lock and sync — the
// invariant is about request handlers, not the name "Handle".
#include "common/thread_annotations.h"
#include "durability/wal.h"

namespace nous {

class OfflineBatcher {
 public:
  void HandleBatch() {
    WriterMutexLock lock(mu_);
    (void)wal_.Sync();
  }

 private:
  AnnotatedSharedMutex mu_;
  WalWriter wal_;
};

}  // namespace nous
