// Negative fixtures for nous-handler-blocking: reader locks and
// bounded bookkeeping locks are the sanctioned handler tools, and
// non-handler functions in the serving layer may still coordinate
// writes (e.g. the ingest dispatch path outside Handle*).
#include "common/thread_annotations.h"

namespace nous {

class ServingApi {
 public:
  int HandleStats() {
    ReaderMutexLock lock(kg_mutex_);  // shared lock: fine
    MutexLock bookkeeping(counters_mutex_);  // bounded bookkeeping: fine
    return 1;
  }

  int HandleConnectionCount() {
    UniqueLock lock(counters_mutex_);  // plain mutex, not the KG lock
    return 2;
  }

  // Not a Handle* function: the writer lock is allowed (the check
  // polices handlers, not the whole serving layer).
  void DispatchWrite() { WriterMutexLock lock(kg_mutex_); }

 private:
  AnnotatedSharedMutex kg_mutex_;
  AnnotatedMutex counters_mutex_;
};

}  // namespace nous
