// Positive fixtures for nous-handler-blocking: request handlers in
// the serving layer must neither take the KG writer lock nor touch
// the fsync path.
#include <string>

#include "common/thread_annotations.h"
#include "durability/manager.h"
#include "durability/wal.h"

namespace nous {

class BlockingApi {
 public:
  void HandleLock() {
    // expect: 'HandleLock' takes an exclusive (writer) lock
    WriterMutexLock lock(kg_mutex_);
  }

  void HandleRawLock() {
    // Raw exclusive acquisition is just as bad as the RAII guard.
    // expect: 'HandleRawLock' takes an exclusive (writer) lock
    kg_mutex_.lock();
    kg_mutex_.unlock();
  }

  void HandleSync() {
    // expect: 'HandleSync' calls the fsync-path primitive 'Sync'
    (void)wal_.Sync();
  }

  void HandleCheckpoint(std::string state) {
    // expect: 'HandleCheckpoint' calls the fsync-path primitive 'WriteCheckpoint'
    (void)manager_.WriteCheckpoint(state);
  }

 private:
  AnnotatedSharedMutex kg_mutex_;
  WalWriter wal_;
  DurabilityManager manager_;
};

}  // namespace nous
