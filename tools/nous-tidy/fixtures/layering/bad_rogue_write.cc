// Positive fixtures for nous-layering: direct KG mutation outside the
// ingest funnel (pipeline commit path / durability recovery / graph
// layer). The WAL can only be complete if nobody else writes.
#include "graph/property_graph.h"

namespace nous {

void RogueVertex(PropertyGraph& g) {
  // expect: 'GetOrAddVertex' of nous::PropertyGraph outside the ingest funnel
  g.GetOrAddVertex("rogue");
}

void RogueInterning(PropertyGraph& g) {
  // Two violations on one line: the non-const types() accessor and
  // the Dictionary mutation behind it.
  // expect: 'types' of nous::PropertyGraph outside the ingest funnel
  // expect: 'Intern' of nous::Dictionary outside the ingest funnel
  g.types().Intern("Person");
}

void RogueTyping(PropertyGraph& g, VertexId v) {
  // expect: 'SetVertexType' of nous::PropertyGraph outside the ingest funnel
  g.SetVertexType(v, 1);
}

}  // namespace nous
