// Negative fixtures for nous-layering: const reads anywhere are fine,
// and a justified NOLINT (mirroring the entity-linker exception)
// suppresses the check the standard clang-tidy way.
#include <string>

#include "graph/property_graph.h"

namespace nous {

size_t ReadOnlyAnywhere(const PropertyGraph& g) {
  size_t n = g.NumVertices();
  n += g.types().size();  // const overload of types(): fine
  return n;
}

void JustifiedWrite(PropertyGraph& g) {
  // Mirrors src/linker/entity_linker.cc: entity creation is part of
  // the commit path even though the file lives outside the funnel.
  // NOLINTNEXTLINE(nous-layering)
  g.GetOrAddVertex("linker-created");
}

}  // namespace nous
