// Negative fixture: this file's path contains "/src/durability/" —
// WAL replay and checkpoint load legitimately rebuild the graph.
#include "graph/property_graph.h"

namespace nous {

void ReplayVertex(PropertyGraph& g, VertexId v) {
  VertexId added = g.GetOrAddVertex("replayed");
  g.SetVertexType(added, 2);
  g.types().Intern("Replayed");
  (void)v;
}

}  // namespace nous
