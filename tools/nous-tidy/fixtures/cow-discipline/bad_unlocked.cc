// Positive fixtures for nous-cow-discipline: COW mutators outside
// src/graph/ in functions without a REQUIRES(...) annotation, and
// use_count() outside graph/cow.h.
#include <memory>

#include "graph/cow.h"

namespace nous {

void UnlockedPush(CowVec<int>& vec) {
  // expect: COW mutation 'PushBack'
  vec.PushBack(1);
}

void UnlockedDetach(CowVec<int>& vec) {
  // Detach is the subtle one: it silently forks the chunk.
  // expect: COW mutation 'Detach'
  vec.Detach();
}

long RefcountPeek(const std::shared_ptr<int>& p) {
  // expect: use_count() outside graph/cow.h
  return p.use_count();
}

}  // namespace nous
