// Negative fixtures for nous-cow-discipline: a REQUIRES(...)-annotated
// function may mutate COW state (the annotation proves the pipeline
// lock is held, which is what makes use_count()==1 mean "sole owner"),
// and const reads never need one.
#include "common/thread_annotations.h"
#include "graph/cow.h"

namespace nous {

class LockedHolder {
 public:
  // Annotated: the capability requirement is visible to the analysis.
  void Append(int v) REQUIRES(mu_) { vec_.PushBack(v); }

  // REQUIRES_SHARED also carries the RequiresCapability attribute.
  int ReadBack(size_t i) const REQUIRES_SHARED(mu_) { return vec_[i]; }

  // Const access needs no annotation at all.
  size_t Size() const { return vec_.size(); }

  AnnotatedMutex& mu() RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  AnnotatedMutex mu_;
  CowVec<int> vec_ GUARDED_BY(mu_);
};

}  // namespace nous
