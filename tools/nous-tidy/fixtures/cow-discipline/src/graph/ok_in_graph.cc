// Negative fixture: this file's path contains "/src/graph/", the COW
// layer itself, where mutators are the implementation — no annotation
// required (cow.h/property_graph.cc fork chunks as part of the
// unshare machinery).
#include "graph/cow.h"

namespace nous {

void GraphLayerMutation(CowVec<int>& vec) {
  vec.PushBack(7);
  vec.Resize(16);
  vec.Mutable(0) = 42;
  vec.Detach();
}

}  // namespace nous
