//===--- HandlerBlockingCheck.cc - nous-handler-blocking ------------------===//

#include "HandlerBlockingCheck.h"

#include "NousTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace nous {

HandlerBlockingCheck::HandlerBlockingCheck(StringRef Name,
                                           ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      HandlerPaths(Options.get("HandlerPaths", "/src/server/")) {
  HandlerPathsVec = SplitList(HandlerPaths);
}

void HandlerBlockingCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "HandlerPaths", HandlerPaths);
}

void HandlerBlockingCheck::registerMatchers(MatchFinder *Finder) {
  // "::Handle" matches any method or function whose unqualified name
  // starts with Handle (HandleQuery, HandleConnection, ...).
  auto InHandler =
      forFunction(functionDecl(matchesName("::Handle")).bind("handler"));

  Finder->addMatcher(
      cxxConstructExpr(hasDeclaration(cxxConstructorDecl(ofClass(
                           hasAnyName("::nous::WriterMutexLock")))),
                       InHandler)
          .bind("writer-lock"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasAnyName("lock", "try_lock"),
                               ofClass(hasAnyName(
                                   "::nous::AnnotatedSharedMutex")))),
          InHandler)
          .bind("writer-lock"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("Open", "Append", "Sync", "Close", "OpenWal",
                         "WriteCheckpoint", "SyncWal", "Checkpoint",
                         "EnableDurability", "Recover"),
              ofClass(hasAnyName("::nous::WalWriter",
                                 "::nous::DurabilityManager", "::nous::Nous")))),
          InHandler)
          .bind("durability-call"),
      this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName(
                   "::nous::AtomicWriteFile", "::nous::FsyncParentDir",
                   "::nous::TruncateFile", "::nous::RemoveFile", "::fsync",
                   "::fdatasync"))),
               InHandler)
          .bind("durability-call"),
      this);
}

void HandlerBlockingCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Handler = Result.Nodes.getNodeAs<FunctionDecl>("handler");
  if (Handler == nullptr)
    return;

  if (const auto *Lock = Result.Nodes.getNodeAs<Expr>("writer-lock")) {
    const std::string File =
        FileOf(*Result.SourceManager, Lock->getBeginLoc());
    if (!PathContainsAny(File, HandlerPathsVec))
      return;
    diag(Lock->getBeginLoc(),
         "%0 takes an exclusive (writer) lock; request handlers serve off "
         "published snapshots and must never hold the KG writer lock "
         "(DESIGN.md §5.14)")
        << Handler;
    return;
  }

  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("durability-call")) {
    const std::string File =
        FileOf(*Result.SourceManager, Call->getBeginLoc());
    if (!PathContainsAny(File, HandlerPathsVec))
      return;
    const FunctionDecl *Callee = Call->getDirectCallee();
    if (Callee == nullptr)
      return;
    diag(Call->getExprLoc(),
         "%0 calls the fsync-path primitive %1; disk latency must not ride "
         "on the request path — delegate durable work to the Nous facade "
         "(DESIGN.md §5.14)")
        << Handler << Callee;
    return;
  }
}

} // namespace nous
} // namespace tidy
} // namespace clang
