//===--- SnapshotMutationCheck.h - nous-snapshot-mutation -----------------===//

#ifndef NOUS_TOOLS_NOUS_TIDY_SNAPSHOT_MUTATION_CHECK_H_
#define NOUS_TOOLS_NOUS_TIDY_SNAPSHOT_MUTATION_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace nous {

/// Proves the snapshot-immutability invariant (DESIGN.md §5.11/§5.14):
/// once a KgSnapshot is published, nothing reachable from it may be
/// mutated. The type system enforces most of this after the
/// const-propagation refactor (every KgSnapshot accessor returns
/// const& / shared_ptr<const ...>); this check flags the residue the
/// type system cannot see:
///
///  * non-const member calls on state rooted at a snapshot type,
///  * const_cast whose destination is a snapshot type or whose operand
///    is rooted at one,
///  * non-const reference/pointer bindings (and address-of escapes)
///    of snapshot-rooted state.
///
/// Options:
///  * SnapshotTypes — semicolon list of deeply-immutable root types
///    (default "nous::KgSnapshot;nous::RenderedPatternSet").
///  * BuilderPaths — path substrings where pre-publish construction is
///    legitimate (default "/src/core/pipeline;/src/core/snapshot").
class SnapshotMutationCheck : public ClangTidyCheck {
public:
  SnapshotMutationCheck(StringRef Name, ClangTidyContext *Context);
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  const std::string SnapshotTypes;
  const std::string BuilderPaths;
  llvm::SmallVector<llvm::StringRef, 8> SnapshotTypesVec;
  llvm::SmallVector<llvm::StringRef, 8> BuilderPathsVec;
};

} // namespace nous
} // namespace tidy
} // namespace clang

#endif // NOUS_TOOLS_NOUS_TIDY_SNAPSHOT_MUTATION_CHECK_H_
