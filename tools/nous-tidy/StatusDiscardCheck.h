//===--- StatusDiscardCheck.h - nous-status-discard -----------------------===//

#ifndef NOUS_TOOLS_NOUS_TIDY_STATUS_DISCARD_CHECK_H_
#define NOUS_TOOLS_NOUS_TIDY_STATUS_DISCARD_CHECK_H_

#include <string>

#include "clang-tidy/ClangTidyCheck.h"
#include "llvm/ADT/SmallVector.h"
#include "llvm/ADT/StringRef.h"

namespace clang {
namespace tidy {
namespace nous {

/// Every nous::Status / nous::Result<T> returned by value must be
/// consumed. The class-level [[nodiscard]] catches the plain
/// `Foo();` case in the compiler; this check additionally catches the
/// laundered discards the builtin warning misses:
///
///   cond ? Foo() : Bar();          // ternary in statement position
///   static_cast<Status>(Foo());    // cast that still yields a Status
///   (x, Foo());                    // comma-operator RHS
///   for (...; ...; Foo()) {}       // for-increment position
///
/// `(void)Foo();` stays allowed as the explicit, greppable opt-out
/// (pair it with a comment saying why).
///
/// Options:
///  * StatusTypes — semicolon list of must-consume value types
///    (default "nous::Status;nous::Result").
class StatusDiscardCheck : public ClangTidyCheck {
public:
  StatusDiscardCheck(StringRef Name, ClangTidyContext *Context);
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  bool isDiscarded(const Expr *Call, ASTContext &Ctx) const;

  const std::string StatusTypes;
  llvm::SmallVector<llvm::StringRef, 8> StatusTypesVec;
};

} // namespace nous
} // namespace tidy
} // namespace clang

#endif // NOUS_TOOLS_NOUS_TIDY_STATUS_DISCARD_CHECK_H_
