//===--- NousTidyModule.cc - registers the nous-* check suite -------------===//
//
// Out-of-tree clang-tidy module. Built as a shared object and loaded
// with `clang-tidy -load libnous-tidy.so -checks=-*,nous-*`; symbols
// resolve against the hosting clang-tidy binary, so the module links
// no LLVM/clang libraries of its own.
//
//===----------------------------------------------------------------------===//

#include "CowDisciplineCheck.h"
#include "HandlerBlockingCheck.h"
#include "LayeringCheck.h"
#include "SnapshotMutationCheck.h"
#include "StatusDiscardCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

namespace clang {
namespace tidy {
namespace nous {

class NousTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &CheckFactories) override {
    CheckFactories.registerCheck<SnapshotMutationCheck>(
        "nous-snapshot-mutation");
    CheckFactories.registerCheck<CowDisciplineCheck>("nous-cow-discipline");
    CheckFactories.registerCheck<StatusDiscardCheck>("nous-status-discard");
    CheckFactories.registerCheck<LayeringCheck>("nous-layering");
    CheckFactories.registerCheck<HandlerBlockingCheck>(
        "nous-handler-blocking");
  }
};

} // namespace nous

// Static initializer runs at -load time and registers the module.
static ClangTidyModuleRegistry::Add<nous::NousTidyModule>
    NousTidyModuleInit("nous-module",
                       "NOUS snapshot/COW/durability invariant checks.");

} // namespace tidy
} // namespace clang
