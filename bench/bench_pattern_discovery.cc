// E5 — reproduces Figure 7: "patterns discovered from updates to the
// knowledge graph" on a drifting stream. Shows the streaming miner's
// churn reporting (newly frequent / demoted patterns per checkpoint)
// and the §3.5 demotion/reconstruction property: when a larger pattern
// decays below the support threshold, its smaller frequent structure
// is still reported without re-enumeration.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "graph/graph_generator.h"
#include "graph/temporal_window.h"
#include "mining/continuous_query.h"
#include "mining/pattern_matcher.h"
#include "mining/streaming_miner.h"

namespace nous {
namespace {

void RunDriftExperiment() {
  bench::PrintHeader(
      "E5: pattern discovery under drift",
      "Figure 7 (patterns from KG updates)",
      "Two-phase stream: pattern set swaps halfway; churn per "
      "checkpoint.");

  PlantedStreamConfig phase1;
  phase1.num_events = 3000;
  phase1.noise_entities = 1500;  // sparse noise: few incidental stars
  phase1.patterns = {{"acq", {"acquired", "investsIn"}, 0.08},
                     {"mfg", {"manufactures", "launched"}, 0.06}};
  PlantedStreamConfig phase2 = phase1;
  phase2.patterns = {{"reg", {"regulates", "investigated"}, 0.08},
                     {"mfg", {"manufactures", "launched"}, 0.02}};
  auto stream = GenerateDriftStream(phase1, phase2);

  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 10;
  PropertyGraph graph;
  TemporalWindow window(&graph, 1500);
  StreamingMiner miner(config);
  window.AddListener(&miner);

  TablePrinter table({"checkpoint (edges)", "phase", "frequent", "closed",
                      "newly frequent", "demoted"});
  size_t checkpoint_every = stream.size() / 8;
  for (size_t i = 0; i < stream.size(); ++i) {
    window.Add(stream[i]);
    if ((i + 1) % checkpoint_every == 0) {
      auto churn = miner.TakeChurn();
      table.AddRow(
          {TablePrinter::Int(static_cast<long long>(i + 1)),
           i < stream.size() / 2 ? "A (acq+mfg)" : "B (reg+mfg-)",
           TablePrinter::Int(static_cast<long long>(
               miner.FrequentPatterns().size())),
           TablePrinter::Int(static_cast<long long>(
               miner.ClosedFrequentPatterns().size())),
           TablePrinter::Int(static_cast<long long>(
               churn.became_frequent.size())),
           TablePrinter::Int(static_cast<long long>(
               churn.became_infrequent.size()))});
    }
  }
  table.Print(std::cout);

  std::cout << "\nClosed frequent structural (2-edge) patterns at "
               "stream end (Figure 7's discovered patterns):\n";
  for (const PatternStats& stats : miner.ClosedFrequentPatterns()) {
    if (stats.pattern.num_edges() < 2) continue;
    std::cout << StrFormat("  support=%-4zu %s\n", stats.support,
                           stats.pattern.ToString(graph.predicates())
                               .c_str());
  }
  std::cout << "\nShape to check: phase A patterns (acquired/investsIn "
               "star) demote after the drift point while phase B "
               "patterns (regulates/investigated) become frequent; the "
               "shrunk mfg pattern's single-edge sub-patterns survive "
               "as the 2-edge star demotes — the §3.5 reconstruction "
               "property.\n";

  // Explicit reconstruction check: the mfg 2-edge star vs. its 1-edge
  // sub-patterns at the end of the stream.
  auto mfg_pred = graph.predicates().Lookup("manufactures");
  auto launched_pred = graph.predicates().Lookup("launched");
  if (mfg_pred && launched_pred) {
    Pattern star = Pattern::Canonicalize(
        {{0, *mfg_pred, 1}, {0, *launched_pred, 2}},
        [](uint64_t) { return kInvalidType; });
    Pattern single = Pattern::Canonicalize(
        {{0, *mfg_pred, 1}}, [](uint64_t) { return kInvalidType; });
    std::cout << StrFormat(
        "\n2-edge mfg star support: %zu (minsup %zu) | 1-edge "
        "manufactures support: %zu\n",
        miner.SupportOf(star), config.min_support,
        miner.SupportOf(single));
  }
}

/// Standing-query detection (the EDBT'15 capability folded into NOUS's
/// querying story): incremental match latency vs. re-running the batch
/// matcher per edge.
void RunContinuousQueries() {
  std::cout << "\n-- continuous (standing) pattern queries --\n";
  PlantedStreamConfig config;
  config.num_events = 4000;
  config.noise_entities = 1000;
  config.patterns = {{"acq", {"acquired", "investsIn"}, 0.05}};
  auto stream = GeneratePlantedStream(config);

  TablePrinter table({"mode", "total ms", "matches fired",
                      "us/edge"});
  // Incremental detection.
  {
    PropertyGraph graph;
    TemporalWindow window(&graph, 1500);
    ContinuousPatternDetector detector;
    window.AddListener(&detector);
    PredicateId acq = graph.predicates().Intern("acquired");
    PredicateId inv = graph.predicates().Intern("investsIn");
    int id = detector.RegisterPattern(Pattern::Canonicalize(
        {{0, acq, 1}, {0, inv, 2}},
        [](uint64_t) { return kInvalidType; }));
    WallTimer timer;
    for (const TimedTriple& t : stream) window.Add(t);
    double ms = timer.ElapsedMillis();
    table.AddRow({"incremental (NOUS)", TablePrinter::Num(ms, 1),
                  TablePrinter::Int(static_cast<long long>(
                      detector.TotalMatches(id))),
                  TablePrinter::Num(ms * 1000 / stream.size(), 2)});
  }
  // Batch re-match at every slide (1/10 window) for comparison.
  {
    PropertyGraph graph;
    TemporalWindow window(&graph, 1500);
    PredicateId acq = graph.predicates().Intern("acquired");
    PredicateId inv = graph.predicates().Intern("investsIn");
    Pattern star = Pattern::Canonicalize(
        {{0, acq, 1}, {0, inv, 2}},
        [](uint64_t) { return kInvalidType; });
    WallTimer timer;
    size_t matches = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      window.Add(stream[i]);
      if (i % 150 == 0) {
        matches = MatchPattern(graph, star).size();
      }
    }
    double ms = timer.ElapsedMillis();
    table.AddRow({"batch re-match per slide", TablePrinter::Num(ms, 1),
                  TablePrinter::Int(static_cast<long long>(matches)),
                  TablePrinter::Num(ms * 1000 / stream.size(), 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape to check: incremental detection fires EVERY "
               "match exactly once at arrival time (zero detection "
               "delay); periodic batch re-matching is cheaper per edge "
               "at this slide interval but only sees window snapshots — "
               "the 'matches fired' column shows how many transient "
               "matches it misses. Tightening the slide interval closes "
               "the completeness gap at a cost that quickly exceeds the "
               "incremental path.\n";
}

void BM_TakeChurn(benchmark::State& state) {
  PlantedStreamConfig config;
  config.num_events = 2000;
  config.patterns = {{"a", {"p", "q"}, 0.1}};
  auto stream = GeneratePlantedStream(config);
  MinerConfig mc;
  mc.min_support = 5;
  PropertyGraph graph;
  TemporalWindow window(&graph, 1000);
  StreamingMiner miner(mc);
  window.AddListener(&miner);
  for (const TimedTriple& t : stream) window.Add(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(miner.TakeChurn());
  }
}
BENCHMARK(BM_TakeChurn);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunDriftExperiment();
  nous::RunContinuousQueries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
