// E3 — reproduces §3.4: confidence estimation via BPR link prediction.
// Ranking quality (AUC / MRR / Hits@10, filtered object-corruption
// setting) of the BPR latent-feature model against topology baselines,
// across KG snapshot sizes and latent dimensions, plus training cost.

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>
#include <unordered_map>

#include "bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "embed/baselines.h"
#include "embed/bpr.h"
#include "embed/eval.h"

namespace nous {
namespace {

/// Ground-truth KG snapshot: world facts as id triples.
struct Snapshot {
  std::vector<IdTriple> triples;
  size_t num_entities = 0;
  size_t num_predicates = 0;
};

Snapshot MakeSnapshot(size_t num_events, uint64_t seed) {
  auto fixture = bench::MakeDroneFixture(num_events, seed);
  Snapshot snapshot;
  std::unordered_map<std::string, uint32_t> predicate_ids;
  snapshot.num_entities = fixture.world.entities().size();
  for (const WorldFact& f : fixture.world.facts()) {
    auto [it, inserted] = predicate_ids.try_emplace(
        f.predicate, static_cast<uint32_t>(predicate_ids.size()));
    snapshot.triples.push_back(
        IdTriple{static_cast<uint32_t>(f.subject), it->second,
                 static_cast<uint32_t>(f.object)});
  }
  snapshot.num_predicates = predicate_ids.size();
  return snapshot;
}

void RunModelComparison() {
  bench::PrintHeader(
      "E3: link-prediction confidence",
      "§3.4 (BPR triple scoring)",
      "AUC/MRR/Hits@10 under filtered object corruption; 80/20 split.");
  for (size_t events : {400ul, 1200ul}) {
    Snapshot snapshot = MakeSnapshot(events, 31);
    std::vector<IdTriple> train, test;
    SplitTriples(snapshot.triples, 0.8, 5, &train, &test);
    std::cout << "\n-- KG snapshot: " << snapshot.triples.size()
              << " facts, " << snapshot.num_entities << " entities --\n";
    TablePrinter table({"model", "AUC", "MRR", "Hits@10", "train ms"});

    NeighborIndex index(train, snapshot.num_entities);
    auto add_row = [&](const LinkPredictor& model, double train_ms) {
      RankingMetrics m = EvaluateRanking(model, test, snapshot.triples,
                                         snapshot.num_entities);
      table.AddRow({model.name(), TablePrinter::Num(m.auc, 3),
                    TablePrinter::Num(m.mrr, 3),
                    TablePrinter::Num(m.hits_at_10, 3),
                    TablePrinter::Num(train_ms, 1)});
    };

    {
      BprConfig config;
      config.epochs = 60;
      config.latent_dim = 32;
      BprModel bpr(config);
      WallTimer timer;
      bpr.Train(train, snapshot.num_entities, snapshot.num_predicates);
      add_row(bpr, timer.ElapsedMillis());
    }
    add_row(CommonNeighborsPredictor(&index), 0);
    add_row(AdamicAdarPredictor(&index), 0);
    add_row(PreferentialAttachmentPredictor(&index), 0);
    add_row(RandomPredictor(3), 0);
    table.Print(std::cout);
  }
  std::cout << "\nShape to check: BPR leads the ranking metrics; all "
               "informed models beat random (AUC 0.5).\n";
}

void RunDimensionSweep() {
  std::cout << "\n-- BPR latent dimension sweep (1200-event snapshot) --\n";
  Snapshot snapshot = MakeSnapshot(1200, 31);
  std::vector<IdTriple> train, test;
  SplitTriples(snapshot.triples, 0.8, 5, &train, &test);
  TablePrinter table({"latent dim", "AUC", "MRR", "train ms"});
  for (size_t dim : {8ul, 16ul, 32ul, 64ul}) {
    BprConfig config;
    config.epochs = 60;
    config.latent_dim = dim;
    BprModel bpr(config);
    WallTimer timer;
    bpr.Train(train, snapshot.num_entities, snapshot.num_predicates);
    double train_ms = timer.ElapsedMillis();
    RankingMetrics m = EvaluateRanking(bpr, test, snapshot.triples,
                                       snapshot.num_entities);
    table.AddRow({TablePrinter::Int(static_cast<long long>(dim)),
                  TablePrinter::Num(m.auc, 3), TablePrinter::Num(m.mrr, 3),
                  TablePrinter::Num(train_ms, 1)});
  }
  table.Print(std::cout);
}

void BM_BprScore(benchmark::State& state) {
  Snapshot snapshot = MakeSnapshot(400, 31);
  BprConfig config;
  config.epochs = 10;
  BprModel bpr(config);
  bpr.Train(snapshot.triples, snapshot.num_entities,
            snapshot.num_predicates);
  size_t i = 0;
  for (auto _ : state) {
    const IdTriple& t = snapshot.triples[i % snapshot.triples.size()];
    benchmark::DoNotOptimize(bpr.Score(t[0], t[1], t[2]));
    ++i;
  }
}
BENCHMARK(BM_BprScore);

void BM_BprTrainEpoch(benchmark::State& state) {
  Snapshot snapshot = MakeSnapshot(400, 31);
  BprConfig config;
  config.epochs = 0;
  BprModel bpr(config);
  bpr.Train(snapshot.triples, snapshot.num_entities,
            snapshot.num_predicates);
  for (auto _ : state) {
    bpr.TrainIncremental(snapshot.triples, snapshot.num_entities,
                         snapshot.num_predicates, 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(snapshot.triples.size()));
}
BENCHMARK(BM_BprTrainEpoch);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunModelComparison();
  nous::RunDimensionSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
