// E9 — query serving under concurrent ingest (DESIGN.md §5.11): the
// workload the snapshot refactor exists for. One writer thread ingests
// at a fixed offered rate while 1..N reader threads fire the Figure-5
// query mix; we measure per-query latency, query throughput, and the
// achieved ingest rate in three serving modes:
//
//   locked          publish_snapshots=false — every query holds the
//                   pipeline's shared lock and contends with commits
//   snapshot        lock-free serving from immutable KgSnapshots
//   snapshot+cache  snapshot serving plus the versioned LRU answer
//                   cache (hits only while the KG version is stable)
//
// Results land in BENCH_query_serving.json. The acceptance shape:
// snapshot p50 at the widest thread count >= 2x better than locked.
//
//   bench_query_serving [--threads N] [--small]
//
// --small shrinks the corpus and per-run duration for CI smoke runs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "core/nous.h"
#include "server/json_writer.h"
#include "common/status.h"

namespace nous {
namespace {

struct ServingMode {
  const char* name;
  bool publish_snapshots;
  bool cache;
};

constexpr ServingMode kModes[] = {
    {"locked", false, false},
    {"snapshot", true, false},
    {"snapshot+cache", true, true},
};

struct RunResult {
  std::string mode;
  size_t query_threads = 0;
  size_t queries = 0;
  double seconds = 0;
  double qps = 0;
  double p50_us = 0;
  double p90_us = 0;
  double p99_us = 0;
  size_t ingested_docs = 0;
  size_t offered_docs = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Snapshot publish latency over this run (registry is reset per
  /// run); zero in locked mode, which never publishes.
  uint64_t publish_count = 0;
  double publish_p50_us = 0;
  double publish_p99_us = 0;
  /// Process peak RSS at the end of the run (monotonic across runs).
  uint64_t peak_rss_bytes = 0;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

/// The query mix, derived once from a reference build of the same
/// fixture so every mode serves identical questions: entity lookups
/// dominate, with relationship explanations, trending, and patterns
/// mixed in (Figure 5's four classes).
std::vector<std::string> BuildQueryMix(const bench::DroneFixture& fixture,
                                       size_t count) {
  Nous reference(&fixture.kb);
  for (const Article& a : fixture.articles) NOUS_CHECK_OK(reference.Ingest(a));
  std::vector<std::string> labels;
  {
    auto snap = reference.snapshot();
    for (VertexId v = 0; v < snap->graph().NumVertices(); ++v) {
      if (snap->graph().OutDegree(v) + snap->graph().InDegree(v) > 0) {
        labels.push_back(snap->graph().VertexLabel(v));
      }
    }
  }
  std::vector<std::string> queries;
  Rng rng(97);
  while (queries.size() < count && !labels.empty()) {
    double roll = rng.UniformDouble();
    if (roll < 0.6) {
      queries.push_back(
          "tell me about " + labels[rng.UniformInt(labels.size())]);
    } else if (roll < 0.8) {
      const std::string& a = labels[rng.UniformInt(labels.size())];
      const std::string& b = labels[rng.UniformInt(labels.size())];
      if (a == b) continue;
      queries.push_back("explain " + a + " and " + b);
    } else if (roll < 0.9) {
      queries.push_back("what is trending");
    } else {
      queries.push_back("show patterns");
    }
  }
  return queries;
}

RunResult RunOne(const bench::DroneFixture& fixture,
                 const std::vector<std::string>& queries,
                 const ServingMode& mode, size_t query_threads,
                 size_t warm_docs, double duration_seconds,
                 double ingest_period_seconds) {
  // Per-run latency accounting: the publish histogram (and everything
  // else in the process-wide registry) restarts from zero, so the
  // quantiles reported below describe only this run.
  MetricsRegistry::Global().ResetAll();
  Nous::Options options;
  options.pipeline.publish_snapshots = mode.publish_snapshots;
  options.query_cache.enabled = mode.cache;
  Nous nous(&fixture.kb, options);
  for (size_t i = 0; i < warm_docs && i < fixture.articles.size(); ++i) {
    NOUS_CHECK_OK(nous.Ingest(fixture.articles[i]));
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> ingested{0};
  // The writer: cycles the remaining articles at a fixed offered rate
  // (one document per `ingest_period_seconds`), so every mode faces
  // the same write load. A mode that cannot keep up — e.g. the locked
  // baseline, whose writer starves behind continuous reader holds —
  // shows the shortfall in ingested vs offered docs.
  std::thread writer([&] {
    auto deadline = std::chrono::steady_clock::now();
    size_t i = warm_docs;
    while (!stop.load(std::memory_order_relaxed)) {
      NOUS_CHECK_OK(nous.Ingest(fixture.articles[i % fixture.articles.size()]));
      ingested.fetch_add(1, std::memory_order_relaxed);
      ++i;
      deadline += std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(ingest_period_seconds));
      std::this_thread::sleep_until(deadline);
    }
  });

  std::vector<std::vector<double>> latencies(query_threads);
  std::vector<std::thread> readers;
  readers.reserve(query_threads);
  for (size_t t = 0; t < query_threads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<double>& local = latencies[t];
      local.reserve(1 << 14);
      size_t i = t;  // stride offset so threads diverge in the mix
      while (!stop.load(std::memory_order_relaxed)) {
        auto start = std::chrono::steady_clock::now();
        auto answer = nous.Ask(queries[i % queries.size()]);
        auto end = std::chrono::steady_clock::now();
        benchmark::DoNotOptimize(answer);
        local.push_back(
            std::chrono::duration<double, std::micro>(end - start)
                .count());
        ++i;
      }
    });
  }

  std::this_thread::sleep_for(
      std::chrono::duration<double>(duration_seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  writer.join();

  std::vector<double> all;
  for (const auto& local : latencies) {
    all.insert(all.end(), local.begin(), local.end());
  }
  RunResult result;
  result.mode = mode.name;
  result.query_threads = query_threads;
  result.queries = all.size();
  result.seconds = duration_seconds;
  result.qps = static_cast<double>(all.size()) / duration_seconds;
  result.p50_us = Percentile(&all, 0.50);
  result.p90_us = Percentile(&all, 0.90);
  result.p99_us = Percentile(&all, 0.99);
  result.ingested_docs = ingested.load();
  result.offered_docs = static_cast<size_t>(duration_seconds /
                                            ingest_period_seconds);
  if (const QueryCache* cache = nous.query_cache()) {
    QueryCache::Stats stats = cache->stats();
    result.cache_hits = stats.hits;
    result.cache_misses = stats.misses;
  }
  bench::LatencyQuantilesUs publish = bench::GlobalHistogramQuantilesUs(
      "nous_snapshot_publish_latency_seconds");
  result.publish_count = publish.count;
  result.publish_p50_us = publish.p50_us;
  result.publish_p99_us = publish.p99_us;
  result.peak_rss_bytes = PeakRssBytes();
  return result;
}

void RunSweep(size_t max_threads, bool small) {
  bench::PrintHeader(
      "E9: query serving under ingest",
      "§3.6 'querying the dynamic knowledge graph' + DESIGN.md §5.11",
      "Mixed read/write load: p50/p90/p99 query latency per serving "
      "mode.");
  const size_t events = small ? 120 : 400;
  const double duration = small ? 0.4 : 1.5;
  // Offered ingest load: 250 docs/s. Snapshot modes sustain it;
  // the locked baseline's writer starves behind reader holds.
  const double ingest_period = 0.004;
  auto fixture = bench::MakeDroneFixture(events, 17, 0.6);
  const size_t warm_docs = fixture.articles.size() / 2;
  std::vector<std::string> queries = BuildQueryMix(fixture, 256);

  std::vector<size_t> sweep;
  for (size_t t : {1ul, 2ul, 4ul, 8ul}) {
    if (t <= max_threads) sweep.push_back(t);
  }
  if (sweep.empty()) sweep.push_back(1);

  TablePrinter table({"mode", "threads", "queries", "qps", "p50 us",
                      "p90 us", "p99 us", "ingest doc %",
                      "cache hit %"});
  std::vector<RunResult> results;
  for (const ServingMode& mode : kModes) {
    for (size_t threads : sweep) {
      RunResult r = RunOne(fixture, queries, mode, threads, warm_docs,
                           duration, ingest_period);
      uint64_t lookups = r.cache_hits + r.cache_misses;
      table.AddRow(
          {r.mode, TablePrinter::Int(static_cast<long long>(threads)),
           TablePrinter::Int(static_cast<long long>(r.queries)),
           TablePrinter::Num(r.qps, 0), TablePrinter::Num(r.p50_us, 1),
           TablePrinter::Num(r.p90_us, 1),
           TablePrinter::Num(r.p99_us, 1),
           TablePrinter::Num(
               r.offered_docs == 0
                   ? 0.0
                   : 100.0 * static_cast<double>(r.ingested_docs) /
                         static_cast<double>(r.offered_docs),
               1),
           TablePrinter::Num(
               lookups == 0 ? 0.0
                            : 100.0 * static_cast<double>(r.cache_hits) /
                                  static_cast<double>(lookups),
               1)});
      results.push_back(std::move(r));
    }
  }
  table.Print(std::cout);

  // Headline numbers at the widest thread count: locked-baseline p50
  // over (a) plain snapshot serving and (b) the default serving stack
  // (snapshot + versioned cache). (b) >= 2 is the acceptance shape.
  // Read these together with "ingest doc %": the locked baseline's
  // low query latency is bought by starving ingest to ~zero, which is
  // the stall this refactor removes.
  double locked_p50 = 0, snapshot_p50 = 0, default_p50 = 0;
  for (const RunResult& r : results) {
    if (r.query_threads != sweep.back()) continue;
    if (r.mode == "locked") locked_p50 = r.p50_us;
    if (r.mode == "snapshot") snapshot_p50 = r.p50_us;
    if (r.mode == "snapshot+cache") default_p50 = r.p50_us;
  }
  double snapshot_speedup =
      snapshot_p50 > 0 ? locked_p50 / snapshot_p50 : 0.0;
  double default_speedup =
      default_p50 > 0 ? locked_p50 / default_p50 : 0.0;
  std::cout << "\np50 speedup at " << sweep.back()
            << " query threads (vs locked baseline): snapshot "
            << snapshot_speedup << "x, snapshot+cache (default) "
            << default_speedup << "x\n";

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("query_serving");
  json.Key("events");
  json.Int(static_cast<long long>(events));
  json.Key("articles");
  json.Int(static_cast<long long>(fixture.articles.size()));
  json.Key("warm_docs");
  json.Int(static_cast<long long>(warm_docs));
  json.Key("duration_seconds");
  json.Number(duration);
  json.Key("hardware_concurrency");
  json.Int(static_cast<long long>(std::thread::hardware_concurrency()));
  json.Key("small_preset");
  json.Bool(small);
  json.Key("offered_ingest_docs_per_sec");
  json.Number(1.0 / ingest_period);
  json.Key("p50_speedup_snapshot_vs_locked_at_max_threads");
  json.Number(snapshot_speedup);
  json.Key("p50_speedup_default_vs_locked_at_max_threads");
  json.Number(default_speedup);
  json.Key("runs");
  json.BeginArray();
  for (const RunResult& r : results) {
    json.BeginObject();
    json.Key("mode");
    json.String(r.mode);
    json.Key("query_threads");
    json.Int(static_cast<long long>(r.query_threads));
    json.Key("queries");
    json.Int(static_cast<long long>(r.queries));
    json.Key("qps");
    json.Number(r.qps);
    json.Key("p50_us");
    json.Number(r.p50_us);
    json.Key("p90_us");
    json.Number(r.p90_us);
    json.Key("p99_us");
    json.Number(r.p99_us);
    json.Key("ingested_docs");
    json.Int(static_cast<long long>(r.ingested_docs));
    json.Key("offered_docs");
    json.Int(static_cast<long long>(r.offered_docs));
    json.Key("cache_hits");
    json.Int(static_cast<long long>(r.cache_hits));
    json.Key("cache_misses");
    json.Int(static_cast<long long>(r.cache_misses));
    json.Key("publish_count");
    json.Int(static_cast<long long>(r.publish_count));
    json.Key("publish_p50_us");
    json.Number(r.publish_p50_us);
    json.Key("publish_p99_us");
    json.Number(r.publish_p99_us);
    json.Key("peak_rss_bytes");
    json.Int(static_cast<long long>(r.peak_rss_bytes));
    json.EndObject();
  }
  json.EndArray();
  json.Key("peak_rss_bytes");
  json.Int(static_cast<long long>(PeakRssBytes()));
  json.EndObject();
  std::ofstream out("BENCH_query_serving.json");
  out << json.Result() << "\n";
  std::cout << "wrote BENCH_query_serving.json\n";
}

/// Steady-state single-thread query latency with a warm cache — the
/// best case the versioned cache enables (no ingest, stable version).
void BM_CachedQuery(benchmark::State& state) {
  static auto* fixture = new bench::DroneFixture(
      bench::MakeDroneFixture(120, 17, 0.6));
  static Nous* nous = [] {
    Nous* n = new Nous(&fixture->kb);
    for (const Article& a : fixture->articles) NOUS_CHECK_OK(n->Ingest(a));
    return n;
  }();
  for (auto _ : state) {
    auto answer = nous->Ask("tell me about DJI");
    benchmark::DoNotOptimize(answer);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CachedQuery);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  size_t max_threads = 0;
  bool small = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      max_threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg.rfind("--threads=", 0) == 0) {
      max_threads = static_cast<size_t>(std::atoi(arg.c_str() + 10));
    } else if (arg == "--small") {
      small = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  // Default the sweep to 8 reader threads even on narrow machines:
  // the interesting signal is lock contention with the writer, and
  // oversubscription is exactly what exposes it. Past 8 the fixture
  // saturates and the numbers only restate scheduler noise.
  if (max_threads == 0) max_threads = 8;
  if (max_threads > 8) max_threads = 8;
  nous::RunSweep(max_threads, small);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
