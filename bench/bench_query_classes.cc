// E7 — reproduces Figures 5 and 6: the five natural-language-like
// query classes executed against a dynamically constructed KG
// ("Tell me about DJI" is Figure 6's headline example). Reports
// end-to-end latency and answer sizes per class, issued both
// mid-stream (dynamic KG) and post-stream.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/nous.h"
#include "common/status.h"

namespace nous {
namespace {

struct QueryCase {
  std::string cls;
  std::string text;
};

std::vector<QueryCase> MakeQueries(const Nous& nous) {
  std::vector<QueryCase> queries = {
      {"trending", "what is trending"},
      {"entity", "tell me about DJI"},
      {"pattern", "show patterns"},
  };
  // Relationship + search need a connected pair; walk two hops from
  // DJI on the constructed KG.
  const PropertyGraph& g = nous.graph();
  auto dji = g.FindVertex("DJI");
  if (dji.has_value()) {
    for (const AdjEntry& a : g.OutEdges(*dji)) {
      for (const AdjEntry& b : g.OutEdges(a.neighbor)) {
        if (b.neighbor != *dji) {
          std::string other = g.VertexLabel(b.neighbor);
          queries.push_back(
              {"relationship", "explain DJI and " + other});
          queries.push_back({"search", "paths from DJI to " + other});
          return queries;
        }
      }
    }
  }
  return queries;
}

size_t AnswerSize(const Answer& answer) {
  return answer.facts.size() + answer.patterns.size() +
         answer.paths.size() + answer.hot_entities.size();
}

void RunQueryClasses() {
  bench::PrintHeader(
      "E7: the five query classes",
      "Figure 5 + Figure 6 ('Tell me about DJI')",
      "End-to-end latency per class on the constructed KG.");
  auto fixture = bench::MakeDroneFixture(600);
  Nous::Options options;
  options.pipeline.miner.min_support = 4;
  options.pipeline.miner.use_vertex_types = true;
  Nous nous(&fixture.kb, options);

  // Mid-stream snapshot: queries on the half-built dynamic KG.
  size_t half = fixture.articles.size() / 2;
  for (size_t i = 0; i < half; ++i) NOUS_CHECK_OK(nous.Ingest(fixture.articles[i]));
  nous.Finalize();  // topics for path search

  std::cout << "\n-- mid-stream (dynamic KG, " << half
            << " articles ingested) --\n";
  TablePrinter mid({"class", "query", "ok", "answer items", "mean ms"});
  for (const QueryCase& qc : MakeQueries(nous)) {
    Histogram latency;
    size_t items = 0;
    bool ok = true;
    for (int rep = 0; rep < 20; ++rep) {
      WallTimer timer;
      auto answer = nous.Ask(qc.text);
      latency.Add(timer.ElapsedMillis());
      if (answer.ok()) {
        items = AnswerSize(*answer);
      } else {
        ok = false;
      }
    }
    mid.AddRow({qc.cls, qc.text, ok ? "yes" : "no",
                TablePrinter::Int(static_cast<long long>(items)),
                TablePrinter::Num(latency.Mean(), 3)});
  }
  mid.Print(std::cout);

  // Full stream.
  for (size_t i = half; i < fixture.articles.size(); ++i) {
    NOUS_CHECK_OK(nous.Ingest(fixture.articles[i]));
  }
  nous.Finalize();
  std::cout << "\n-- post-stream (" << fixture.articles.size()
            << " articles) --\n";
  TablePrinter post({"class", "query", "ok", "answer items", "mean ms",
                     "p95 ms"});
  for (const QueryCase& qc : MakeQueries(nous)) {
    Histogram latency;
    size_t items = 0;
    bool ok = true;
    for (int rep = 0; rep < 20; ++rep) {
      WallTimer timer;
      auto answer = nous.Ask(qc.text);
      latency.Add(timer.ElapsedMillis());
      if (answer.ok()) {
        items = AnswerSize(*answer);
      } else {
        ok = false;
      }
    }
    post.AddRow({qc.cls, qc.text, ok ? "yes" : "no",
                 TablePrinter::Int(static_cast<long long>(items)),
                 TablePrinter::Num(latency.Mean(), 3),
                 TablePrinter::Num(latency.Quantile(0.95), 3)});
  }
  post.Print(std::cout);
  std::cout << "\nFigure 6 sample answer:\n";
  if (auto a = nous.Ask("tell me about DJI"); a.ok()) {
    std::cout << a->Render(nous.graph());
  }
}

/// Trending quality: mid-stream, the rising-trend ranking should
/// surface entities with bursty recent ground-truth activity. An
/// entity counts as "truly hot" when it participates in >= 2 world
/// events inside the trailing horizon.
void RunTrendingQuality() {
  std::cout << "\n-- trending quality (precision@k vs ground truth) --\n";
  auto fixture = bench::MakeDroneFixture(800, 47);
  Nous::Options options;
  options.query.trending_horizon = 90;
  TablePrinter table({"checkpoint (articles)", "ranking", "p@5",
                      "p@10"});
  for (double frac : {0.5, 1.0}) {
    size_t upto = static_cast<size_t>(frac * fixture.articles.size());
    for (bool rising : {true, false}) {
      Nous::Options opt = options;
      opt.query.trending_rising = rising;
      Nous nous(&fixture.kb, opt);
      Timestamp newest = 0;
      for (size_t i = 0; i < upto; ++i) {
        NOUS_CHECK_OK(nous.Ingest(fixture.articles[i]));
        newest = std::max(newest,
                          fixture.articles[i].date.ToDayNumber());
      }
      // Ground truth: world events touching the trailing horizon.
      std::map<std::string, size_t> hot;
      for (const WorldFact& f : fixture.world.facts()) {
        if (!f.is_event) continue;
        Timestamp ts = f.date.ToDayNumber();
        if (ts > newest || ts < newest - opt.query.trending_horizon) {
          continue;
        }
        ++hot[fixture.world.entity(f.subject).name];
        ++hot[fixture.world.entity(f.object).name];
      }
      auto truly_hot = [&hot](const std::string& name) {
        auto it = hot.find(name);
        return it != hot.end() && it->second >= 2;
      };
      auto answer = nous.Ask("what is trending");
      if (!answer.ok()) continue;
      size_t hit5 = 0, hit10 = 0;
      for (size_t i = 0;
           i < answer->hot_entities.size() && i < 10; ++i) {
        if (!truly_hot(answer->hot_entities[i].first)) continue;
        if (i < 5) ++hit5;
        ++hit10;
      }
      table.AddRow(
          {TablePrinter::Int(static_cast<long long>(upto)),
           rising ? "rising" : "raw recent count",
           TablePrinter::Num(hit5 / 5.0, 2),
           TablePrinter::Num(
               hit10 / std::min<double>(10.0,
                                        static_cast<double>(
                                            answer->hot_entities.size())),
               2)});
    }
  }
  table.Print(std::cout);
}

void BM_EntityQuery(benchmark::State& state) {
  auto fixture = bench::MakeDroneFixture(300);
  Nous nous(&fixture.kb);
  for (const Article& a : fixture.articles) NOUS_CHECK_OK(nous.Ingest(a));
  nous.Finalize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(nous.Ask("tell me about DJI"));
  }
}
BENCHMARK(BM_EntityQuery);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunQueryClasses();
  nous::RunTrendingQuality();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
