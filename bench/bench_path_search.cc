// E6 — reproduces §3.6: coherent path search for explanatory queries.
// Planted-explanation benchmark: each query pair (source, target) in a
// sector-structured KG has one topically coherent 2-hop explanation
// (same-sector intermediate) and one equally short incoherent
// distractor (cross-sector intermediate). We measure how often each
// ranker returns the coherent explanation first, the mean coherence of
// its top path, and latency, sweeping graph size and topic count.

#include <benchmark/benchmark.h>

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "graph/property_graph.h"
#include "qa/path_baselines.h"
#include "qa/path_search.h"

namespace nous {
namespace {

struct PlantedQuery {
  VertexId source;
  VertexId target;
  VertexId good_mid;  // the coherent explanation's intermediate
};

struct SectorGraph {
  PropertyGraph graph;
  std::vector<PlantedQuery> queries;
};

/// `num_sectors` topic communities; vertices carry jittered
/// near-one-hot topic distributions. Each query plants ONE same-sector
/// 2-hop explanation and `kDistractors` equally short cross-sector
/// distractor paths. All edges are inserted in shuffled order so no
/// method benefits from adjacency-list position.
constexpr size_t kDistractors = 6;

SectorGraph BuildSectorGraph(size_t num_sectors, size_t per_sector,
                             size_t num_queries, size_t noise_edges,
                             uint64_t seed) {
  SectorGraph sg;
  Rng rng(seed);
  PredicateId rel = sg.graph.predicates().Intern("relatedTo");
  std::vector<std::vector<VertexId>> sectors(num_sectors);
  for (size_t s = 0; s < num_sectors; ++s) {
    for (size_t i = 0; i < per_sector; ++i) {
      VertexId v = sg.graph.GetOrAddVertex(
          StrFormat("s%zu_v%zu", s, i));
      std::vector<double> topics(num_sectors, 0.0);
      double total = 0;
      for (size_t k = 0; k < num_sectors; ++k) {
        topics[k] = (k == s ? 0.9 : 0.1 / num_sectors) +
                    0.03 * rng.UniformDouble();
        total += topics[k];
      }
      for (double& t : topics) t /= total;
      sg.graph.SetVertexTopics(v, std::move(topics));
      sectors[s].push_back(v);
    }
  }
  struct PendingEdge {
    VertexId a;
    VertexId b;
    const char* source;
  };
  std::vector<PendingEdge> pending;
  for (size_t q = 0; q < num_queries; ++q) {
    size_t sector = rng.UniformInt(num_sectors);
    VertexId src = rng.Pick(sectors[sector]);
    VertexId dst = rng.Pick(sectors[sector]);
    VertexId mid = rng.Pick(sectors[sector]);
    if (src == dst || mid == src || mid == dst) {
      --q;
      continue;
    }
    pending.push_back({src, mid, "wsj"});
    pending.push_back({mid, dst, "webcrawl"});
    for (size_t d = 0; d < kDistractors; ++d) {
      size_t other = (sector + 1 + rng.UniformInt(num_sectors - 1)) %
                     num_sectors;
      VertexId bad = rng.Pick(sectors[other]);
      pending.push_back({src, bad, "wsj"});
      pending.push_back({bad, dst, "wsj"});
    }
    sg.queries.push_back(PlantedQuery{src, dst, mid});
  }
  size_t total = num_sectors * per_sector;
  for (size_t i = 0; i < noise_edges; ++i) {
    VertexId a = static_cast<VertexId>(rng.UniformInt(total));
    VertexId b = static_cast<VertexId>(rng.UniformInt(total));
    if (a != b) pending.push_back({a, b, "noise_feed"});
  }
  rng.Shuffle(&pending);
  for (const PendingEdge& e : pending) {
    EdgeMeta meta;
    meta.source = sg.graph.sources().Intern(e.source);
    sg.graph.AddEdge(e.a, rel, e.b, meta);
  }
  return sg;
}

struct MethodResult {
  double recovery = 0;   // top-1 path's intermediate == planted good mid
  double coherence = 0;  // mean coherence of top-1 paths
  double mean_ms = 0;
  size_t answered = 0;
};

template <typename FindPaths>
MethodResult Evaluate(const SectorGraph& sg, const FindPaths& find) {
  MethodResult result;
  double coherence_sum = 0;
  size_t recovered = 0;
  WallTimer timer;
  for (const PlantedQuery& q : sg.queries) {
    std::vector<PathResult> paths = find(q);
    if (paths.empty()) continue;
    ++result.answered;
    coherence_sum += paths[0].coherence;
    if (paths[0].vertices.size() == 3 &&
        paths[0].vertices[1] == q.good_mid) {
      ++recovered;
    }
  }
  double total_ms = timer.ElapsedMillis();
  if (result.answered > 0) {
    result.recovery = static_cast<double>(recovered) /
                      static_cast<double>(sg.queries.size());
    result.coherence =
        coherence_sum / static_cast<double>(result.answered);
    result.mean_ms = total_ms / static_cast<double>(sg.queries.size());
  }
  return result;
}

void RunMethodComparison() {
  bench::PrintHeader(
      "E6: coherent path search",
      "§3.6 (topic-coherence path ranking)",
      "Planted-explanation recovery: coherent vs BFS vs random walk.");
  for (size_t per_sector : {50ul, 200ul}) {
    SectorGraph sg = BuildSectorGraph(4, per_sector, 60,
                                      per_sector * 8, 77);
    std::cout << "\n-- graph: " << sg.graph.NumVertices()
              << " vertices, " << sg.graph.NumEdges() << " edges --\n";
    TablePrinter table({"method", "gold recovery", "mean coherence",
                        "ms/query", "answered"});
    // Tight beam: with 1 + kDistractors candidate intermediates, what
    // survives the beam is decided by the topic look-ahead — the
    // ablation without guidance keeps arbitrary successors.
    PathSearchConfig config;
    config.top_k = 3;
    config.max_hops = 3;
    config.beam_width = 4;
    PathSearch coherent(&sg.graph, config);
    PathSearchConfig unguided_config = config;
    unguided_config.use_topic_guidance = false;
    PathSearch unguided(&sg.graph, unguided_config);

    auto row = [&](const char* name, const MethodResult& r) {
      table.AddRow({name, TablePrinter::Num(r.recovery, 3),
                    TablePrinter::Num(r.coherence, 3),
                    TablePrinter::Num(r.mean_ms, 3),
                    TablePrinter::Int(static_cast<long long>(r.answered))});
    };
    row("coherence-guided (NOUS)",
        Evaluate(sg, [&](const PlantedQuery& q) {
          return coherent.FindPaths(q.source, q.target);
        }));
    row("beam without topic guidance",
        Evaluate(sg, [&](const PlantedQuery& q) {
          return unguided.FindPaths(q.source, q.target);
        }));
    row("BFS shortest paths", Evaluate(sg, [&](const PlantedQuery& q) {
          return BfsShortestPaths(sg.graph, q.source, q.target, 3, 3);
        }));
    row("random walks (PRA-style)",
        Evaluate(sg, [&](const PlantedQuery& q) {
          return RandomWalkPaths(sg.graph, q.source, q.target, 3, 3, 300,
                                 5);
        }));
    table.Print(std::cout);
  }
  std::cout << "\nShape to check: the coherence-guided search recovers "
               "the planted explanation far more often than BFS or "
               "random walks and reports lower top-1 divergence.\n";
}

void RunTopicCountSweep() {
  std::cout << "\n-- sensitivity to topic granularity --\n";
  TablePrinter table({"sectors/topics", "gold recovery",
                      "mean coherence"});
  for (size_t sectors : {2ul, 4ul, 8ul}) {
    SectorGraph sg = BuildSectorGraph(sectors, 100, 60, 800, 99);
    PathSearchConfig config;
    config.max_hops = 3;
    PathSearch search(&sg.graph, config);
    MethodResult r = Evaluate(sg, [&](const PlantedQuery& q) {
      return search.FindPaths(q.source, q.target);
    });
    table.AddRow({TablePrinter::Int(static_cast<long long>(sectors)),
                  TablePrinter::Num(r.recovery, 3),
                  TablePrinter::Num(r.coherence, 3)});
  }
  table.Print(std::cout);
}

void BM_CoherentPathQuery(benchmark::State& state) {
  SectorGraph sg = BuildSectorGraph(4, static_cast<size_t>(state.range(0)),
                                    40, state.range(0) * 8, 7);
  PathSearch search(&sg.graph);
  size_t i = 0;
  for (auto _ : state) {
    const PlantedQuery& q = sg.queries[i % sg.queries.size()];
    benchmark::DoNotOptimize(search.FindPaths(q.source, q.target));
    ++i;
  }
}
BENCHMARK(BM_CoherentPathQuery)->Arg(50)->Arg(200);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunMethodComparison();
  nous::RunTopicCountSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
