// E4 — the §3.5 claim: NOUS's incremental streaming miner vs.
// re-enumeration systems ("initial benchmarking ... against distributed
// graph mining systems such as Arabesque suggests 3x speedup").
//
// Method: a labeled triple stream (Zipf-skewed noise + planted star
// patterns) flows through a sliding window. The streaming miner pays
// incremental cost per edge; at every window slide (10% of the window)
// the baselines remine the current window graph from scratch. We
// report per-slide latency and the cumulative speedup, sweeping window
// size. Result sets are cross-checked for equality at each checkpoint.

#include <benchmark/benchmark.h>

#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "graph/graph_generator.h"
#include "graph/temporal_window.h"
#include "mining/arabesque_sim.h"
#include "mining/gspan.h"
#include "mining/streaming_miner.h"

namespace nous {
namespace {

std::vector<TimedTriple> MakeStream(size_t num_events, uint64_t seed) {
  PlantedStreamConfig config;
  config.num_events = num_events;
  config.noise_entities = num_events / 8;
  config.noise_predicates = 12;
  config.patterns = {{"alpha", {"pa", "pb"}, 0.05},
                     {"beta", {"pc", "pd"}, 0.03}};
  config.seed = seed;
  return GeneratePlantedStream(config);
}

std::map<std::string, size_t> ResultKey(
    const std::vector<PatternStats>& stats, const Dictionary& preds) {
  std::map<std::string, size_t> key;
  for (const PatternStats& s : stats) {
    key[s.pattern.ToString(preds)] = s.support;
  }
  return key;
}

void RunWindowSweep() {
  bench::PrintHeader(
      "E4: streaming frequent graph mining",
      "§3.5 (speedup vs Arabesque-style re-enumeration)",
      "Per-slide mining latency; slide = 10% of window; minsup = 8.");
  TablePrinter table({"window", "slides", "stream ms/slide",
                      "arabesque ms/slide", "gspan ms/slide",
                      "speedup vs arabesque", "speedup vs gspan",
                      "frequent", "results match"});
  for (size_t window_size : {1000ul, 2000ul, 4000ul, 8000ul}) {
    MinerConfig config;
    config.max_edges = 2;
    config.min_support = 8;
    PropertyGraph graph;
    TemporalWindow window(&graph, window_size);
    StreamingMiner miner(config);
    window.AddListener(&miner);

    const size_t slide = window_size / 10;
    auto stream = MakeStream(window_size * 3, 7 + window_size);
    double stream_seconds = 0, arabesque_seconds = 0, gspan_seconds = 0;
    size_t slides = 0;
    bool all_match = true;
    size_t frequent_count = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      WallTimer add_timer;
      window.Add(stream[i]);
      stream_seconds += add_timer.ElapsedSeconds();
      // A slide boundary after warmup: baselines remine from scratch.
      if (i >= window_size && (i % slide) == 0) {
        ++slides;
        WallTimer t1;
        auto arabesque = MineArabesqueSim(graph, config);
        arabesque_seconds += t1.ElapsedSeconds();
        WallTimer t2;
        auto gspan = MineGspan(graph, config);
        gspan_seconds += t2.ElapsedSeconds();
        auto stream_result =
            ResultKey(miner.FrequentPatterns(), graph.predicates());
        frequent_count = stream_result.size();
        if (stream_result != ResultKey(arabesque, graph.predicates()) ||
            stream_result != ResultKey(gspan, graph.predicates())) {
          all_match = false;
        }
      }
    }
    if (slides == 0) continue;
    // Streaming cost attributable to one slide's worth of edges.
    double stream_per_slide =
        stream_seconds / (static_cast<double>(stream.size()) /
                          static_cast<double>(slide));
    double arabesque_per_slide =
        arabesque_seconds / static_cast<double>(slides);
    double gspan_per_slide = gspan_seconds / static_cast<double>(slides);
    table.AddRow({TablePrinter::Int(static_cast<long long>(window_size)),
                  TablePrinter::Int(static_cast<long long>(slides)),
                  TablePrinter::Num(stream_per_slide * 1e3, 2),
                  TablePrinter::Num(arabesque_per_slide * 1e3, 2),
                  TablePrinter::Num(gspan_per_slide * 1e3, 2),
                  TablePrinter::Num(arabesque_per_slide /
                                    stream_per_slide, 2),
                  TablePrinter::Num(gspan_per_slide / stream_per_slide, 2),
                  TablePrinter::Int(static_cast<long long>(frequent_count)),
                  all_match ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "\nPaper claim: ~3x over Arabesque-style re-enumeration; "
               "the shape to check is speedup > 1 and growing with "
               "window size.\n";
}

void RunMinsupSweep() {
  std::cout << "\n-- minsup sensitivity (window 4000) --\n";
  TablePrinter table({"minsup", "stream ms/slide", "arabesque ms/slide",
                      "speedup", "frequent"});
  for (size_t minsup : {4ul, 8ul, 16ul, 32ul}) {
    MinerConfig config;
    config.max_edges = 2;
    config.min_support = minsup;
    PropertyGraph graph;
    TemporalWindow window(&graph, 4000);
    StreamingMiner miner(config);
    window.AddListener(&miner);
    auto stream = MakeStream(8000, 99);
    const size_t slide = 400;
    double stream_seconds = 0, arabesque_seconds = 0;
    size_t slides = 0, frequent = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      WallTimer t;
      window.Add(stream[i]);
      stream_seconds += t.ElapsedSeconds();
      if (i >= 4000 && (i % slide) == 0) {
        ++slides;
        WallTimer t1;
        auto result = MineArabesqueSim(graph, config);
        arabesque_seconds += t1.ElapsedSeconds();
        frequent = result.size();
      }
    }
    double stream_per_slide =
        stream_seconds /
        (static_cast<double>(stream.size()) / static_cast<double>(slide));
    double arabesque_per_slide =
        arabesque_seconds / static_cast<double>(slides);
    table.AddRow({TablePrinter::Int(static_cast<long long>(minsup)),
                  TablePrinter::Num(stream_per_slide * 1e3, 2),
                  TablePrinter::Num(arabesque_per_slide * 1e3, 2),
                  TablePrinter::Num(arabesque_per_slide /
                                    stream_per_slide, 2),
                  TablePrinter::Int(static_cast<long long>(frequent))});
  }
  table.Print(std::cout);
}

void RunPatternSizeSweep() {
  std::cout << "\n-- pattern size sensitivity (window 2000) --\n";
  TablePrinter table({"max edges", "stream ms/slide",
                      "arabesque ms/slide", "gspan ms/slide",
                      "speedup vs arabesque", "live embeddings"});
  for (size_t max_edges : {1ul, 2ul, 3ul}) {
    MinerConfig config;
    config.max_edges = max_edges;
    config.min_support = 8;
    PropertyGraph graph;
    TemporalWindow window(&graph, 2000);
    StreamingMiner miner(config);
    window.AddListener(&miner);
    auto stream = MakeStream(4000, 13);
    const size_t slide = 200;
    double stream_seconds = 0, arabesque_seconds = 0, gspan_seconds = 0;
    size_t slides = 0;
    for (size_t i = 0; i < stream.size(); ++i) {
      WallTimer t;
      window.Add(stream[i]);
      stream_seconds += t.ElapsedSeconds();
      if (i >= 2000 && (i % slide) == 0) {
        ++slides;
        WallTimer t1;
        MineArabesqueSim(graph, config);
        arabesque_seconds += t1.ElapsedSeconds();
        WallTimer t2;
        MineGspan(graph, config);
        gspan_seconds += t2.ElapsedSeconds();
      }
    }
    double stream_per_slide =
        stream_seconds /
        (static_cast<double>(stream.size()) / static_cast<double>(slide));
    double arabesque_per_slide =
        arabesque_seconds / static_cast<double>(slides);
    double gspan_per_slide = gspan_seconds / static_cast<double>(slides);
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(max_edges)),
         TablePrinter::Num(stream_per_slide * 1e3, 2),
         TablePrinter::Num(arabesque_per_slide * 1e3, 2),
         TablePrinter::Num(gspan_per_slide * 1e3, 2),
         TablePrinter::Num(arabesque_per_slide / stream_per_slide, 2),
         TablePrinter::Int(static_cast<long long>(
             miner.num_live_embeddings()))});
  }
  table.Print(std::cout);
}

// Micro-benchmark: incremental cost of one streamed edge.
void BM_StreamingMinerAddEdge(benchmark::State& state) {
  MinerConfig config;
  config.max_edges = 2;
  config.min_support = 8;
  PropertyGraph graph;
  TemporalWindow window(&graph, static_cast<size_t>(state.range(0)));
  StreamingMiner miner(config);
  window.AddListener(&miner);
  auto stream = MakeStream(static_cast<size_t>(state.range(0)) * 2, 3);
  size_t i = 0;
  for (const TimedTriple& t : stream) {
    window.Add(t);
    if (++i >= static_cast<size_t>(state.range(0))) break;
  }
  for (auto _ : state) {
    window.Add(stream[i % stream.size()]);
    ++i;
  }
}
BENCHMARK(BM_StreamingMinerAddEdge)->Arg(1000)->Arg(4000);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunWindowSweep();
  nous::RunMinsupSweep();
  nous::RunPatternSizeSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
