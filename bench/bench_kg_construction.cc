// E1 — reproduces Figure 2 / Figure 4: the fused drone knowledge
// graph. Curated (red) vs. extracted (blue) edge composition, the
// per-fact confidence distribution assigned by the link-prediction
// module, and KG growth as the article stream lengthens.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/nous.h"
#include "graph/graph_stats.h"
#include "common/status.h"

namespace nous {
namespace {

void RunGrowthSweep() {
  bench::PrintHeader("E1: fused KG construction",
                     "Figure 2 + Figure 4 (drone knowledge graph)",
                     "KG composition and confidence vs. stream length.");
  TablePrinter table({"events", "articles", "vertices", "curated edges",
                      "extracted edges", "new entities", "conf mean",
                      "conf p10", "conf p90", "docs/s"});
  for (size_t events : {100ul, 200ul, 400ul, 800ul}) {
    auto fixture = bench::MakeDroneFixture(events);
    Nous nous(&fixture.kb);
    WallTimer timer;
    for (const Article& article : fixture.articles) {
      NOUS_CHECK_OK(nous.Ingest(article));
    }
    nous.Finalize();
    double seconds = timer.ElapsedSeconds();
    GraphStats stats = nous.ComputeStats();
    const Histogram& conf = stats.extracted_confidence;
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(events)),
         TablePrinter::Int(static_cast<long long>(
             fixture.articles.size())),
         TablePrinter::Int(static_cast<long long>(stats.vertices)),
         TablePrinter::Int(static_cast<long long>(stats.curated_edges)),
         TablePrinter::Int(static_cast<long long>(stats.extracted_edges)),
         TablePrinter::Int(static_cast<long long>(
             nous.stats().new_entities)),
         TablePrinter::Num(conf.Mean(), 3),
         TablePrinter::Num(conf.Quantile(0.1), 3),
         TablePrinter::Num(conf.Quantile(0.9), 3),
         TablePrinter::Num(static_cast<double>(
                               fixture.articles.size()) / seconds, 1)});
  }
  table.Print(std::cout);
}

void RunConfidenceHistogram() {
  std::cout << "\n-- extracted-fact confidence distribution "
               "(Figure 2's per-fact probabilities; 800 events) --\n";
  auto fixture = bench::MakeDroneFixture(800);
  Nous nous(&fixture.kb);
  for (const Article& article : fixture.articles) NOUS_CHECK_OK(nous.Ingest(article));
  nous.Finalize();
  GraphStats stats = nous.ComputeStats();
  auto buckets = stats.extracted_confidence.Bucketize(0.0, 1.0, 10);
  TablePrinter table({"confidence bucket", "extracted facts"});
  for (size_t b = 0; b < buckets.size(); ++b) {
    table.AddRow({StrFormat("[%.1f, %.1f)", 0.1 * b, 0.1 * (b + 1)),
                  TablePrinter::Int(static_cast<long long>(buckets[b]))});
  }
  table.Print(std::cout);
  std::cout << "\nPer-predicate edge counts (top of Figure 4's legend):\n";
  TablePrinter preds({"predicate", "edges"});
  for (const auto& [name, count] : stats.per_predicate) {
    preds.AddRow({name, TablePrinter::Int(static_cast<long long>(count))});
  }
  preds.Print(std::cout);
}

void BM_IngestArticle(benchmark::State& state) {
  auto fixture = bench::MakeDroneFixture(400);
  Nous nous(&fixture.kb);
  size_t i = 0;
  for (auto _ : state) {
    NOUS_CHECK_OK(nous.Ingest(fixture.articles[i % fixture.articles.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_IngestArticle);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunGrowthSweep();
  nous::RunConfidenceHistogram();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
