#ifndef NOUS_BENCH_BENCH_UTIL_H_
#define NOUS_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>

#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"

namespace nous {
namespace bench {

/// Standard drone-domain fixture: world + curated KB + rendered
/// articles, sized by event count.
struct DroneFixture {
  WorldModel world;
  CuratedKb kb;
  std::vector<Article> articles;
};

inline DroneFixture MakeDroneFixture(size_t num_events,
                                     uint64_t seed = 17,
                                     double entity_coverage = 0.6,
                                     CorpusConfig corpus_config = {}) {
  DroneFixture fixture{WorldModel(), CuratedKb(Ontology::DroneDefault()),
                       {}};
  DroneWorldConfig wc;
  wc.num_companies = 30;
  wc.num_people = 20;
  wc.num_products = 15;
  wc.num_events = num_events;
  wc.seed = seed;
  fixture.world = WorldModel::BuildDroneWorld(wc);
  KbCoverage coverage;
  coverage.entity_coverage = entity_coverage;
  fixture.kb =
      BuildCuratedKb(fixture.world, Ontology::DroneDefault(), coverage);
  fixture.articles =
      ArticleGenerator(&fixture.world, corpus_config).GenerateArticles();
  return fixture;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_artifact,
                        const std::string& what) {
  std::cout << "\n==================================================\n"
            << experiment << " — reproduces " << paper_artifact << "\n"
            << what << "\n"
            << "==================================================\n";
}

}  // namespace bench
}  // namespace nous

#endif  // NOUS_BENCH_BENCH_UTIL_H_
