#ifndef NOUS_BENCH_BENCH_UTIL_H_
#define NOUS_BENCH_BENCH_UTIL_H_

#include <iostream>
#include <string>

#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"

namespace nous {
namespace bench {

/// Standard drone-domain fixture: world + curated KB + rendered
/// articles, sized by event count.
struct DroneFixture {
  WorldModel world;
  CuratedKb kb;
  std::vector<Article> articles;
};

inline DroneFixture MakeDroneFixture(size_t num_events,
                                     uint64_t seed = 17,
                                     double entity_coverage = 0.6,
                                     CorpusConfig corpus_config = {}) {
  DroneFixture fixture{WorldModel(), CuratedKb(Ontology::DroneDefault()),
                       {}};
  DroneWorldConfig wc;
  wc.num_companies = 30;
  wc.num_people = 20;
  wc.num_products = 15;
  wc.num_events = num_events;
  wc.seed = seed;
  fixture.world = WorldModel::BuildDroneWorld(wc);
  KbCoverage coverage;
  coverage.entity_coverage = entity_coverage;
  fixture.kb =
      BuildCuratedKb(fixture.world, Ontology::DroneDefault(), coverage);
  fixture.articles =
      ArticleGenerator(&fixture.world, corpus_config).GenerateArticles();
  return fixture;
}

/// Quantiles of one registry latency histogram, in microseconds.
/// Benches call MetricsRegistry::Global().ResetAll() at the start of a
/// run, then read e.g. "nous_snapshot_publish_latency_seconds" at the
/// end to report per-run publish p50/p99 (ROADMAP item 1's baseline).
struct LatencyQuantilesUs {
  uint64_t count = 0;
  double p50_us = 0;
  double p99_us = 0;
};

inline LatencyQuantilesUs GlobalHistogramQuantilesUs(
    const std::string& name) {
  LatencyQuantilesUs q;
  for (const auto& row : MetricsRegistry::Global().HistogramRows()) {
    if (row.name != name) continue;
    q.count = row.count;
    q.p50_us = row.p50 * 1e6;
    q.p99_us = row.p99 * 1e6;
    break;
  }
  return q;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_artifact,
                        const std::string& what) {
  std::cout << "\n==================================================\n"
            << experiment << " — reproduces " << paper_artifact << "\n"
            << what << "\n"
            << "==================================================\n";
}

}  // namespace bench
}  // namespace nous

#endif  // NOUS_BENCH_BENCH_UTIL_H_
