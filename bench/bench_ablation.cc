// A — ablation study of the pipeline's design choices (DESIGN.md §5).
// Not a paper artifact: the paper asserts each component matters
// (coref heuristics, AIDA coherence, link-prediction confidence,
// distant supervision, source trust); this bench measures each
// component's marginal contribution to end-to-end KG quality on the
// same noisy corpus.
//
// Metrics (KG-level, against world ground truth):
//   recall    = gold events present in the fused KG under canonical
//               names and ontology predicates
//   precision = extracted ontology-predicate edges that correspond to
//               a true world fact
//   mean conf(true) / conf(false) = separation of the confidence
//               signal (higher gap = better calibration)

#include <benchmark/benchmark.h>

#include <iostream>
#include <set>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/nous.h"
#include "common/status.h"

namespace nous {
namespace {

struct AblationResult {
  double recall = 0;
  double precision = 0;
  double conf_true = 0;
  double conf_false = 0;
  /// P(conf(true edge) > conf(false edge)) over extracted ontology
  /// edges — how well the confidence signal ranks truth.
  double conf_auc = 0.5;
};

AblationResult Evaluate(const bench::DroneFixture& fixture,
                        Nous::Options options) {
  Nous nous(&fixture.kb, options);
  for (const Article& article : fixture.articles) NOUS_CHECK_OK(nous.Ingest(article));
  nous.Finalize();
  const PropertyGraph& g = nous.graph();

  // Ground-truth fact set, canonical names + ontology predicate.
  std::set<std::string> truth;
  for (const WorldFact& f : fixture.world.facts()) {
    truth.insert(fixture.world.entity(f.subject).name + "|" +
                 f.predicate + "|" +
                 fixture.world.entity(f.object).name);
  }

  size_t gold_total = 0, recovered = 0;
  for (const Article& article : fixture.articles) {
    for (const TimedTriple& gold : article.gold) {
      ++gold_total;
      auto s = g.FindVertex(gold.triple.subject);
      auto o = g.FindVertex(gold.triple.object);
      auto p = g.predicates().Lookup(gold.triple.predicate);
      if (s && o && p && g.HasEdge(*s, *p, *o)) ++recovered;
    }
  }

  size_t extracted = 0, correct = 0;
  std::vector<double> true_confs, false_confs;
  g.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    if (rec.meta.curated) return;
    const std::string& pred = g.predicates().GetString(rec.predicate);
    if (StartsWith(pred, "raw:")) return;  // unmapped residue
    ++extracted;
    std::string key = g.VertexLabel(rec.subject) + "|" + pred + "|" +
                      g.VertexLabel(rec.object);
    if (truth.count(key) > 0) {
      ++correct;
      true_confs.push_back(rec.meta.confidence);
    } else {
      false_confs.push_back(rec.meta.confidence);
    }
  });

  AblationResult result;
  if (gold_total > 0) {
    result.recall = static_cast<double>(recovered) /
                    static_cast<double>(gold_total);
  }
  if (extracted > 0) {
    result.precision =
        static_cast<double>(correct) / static_cast<double>(extracted);
  }
  for (double c : true_confs) result.conf_true += c;
  for (double c : false_confs) result.conf_false += c;
  if (!true_confs.empty()) result.conf_true /= true_confs.size();
  if (!false_confs.empty()) result.conf_false /= false_confs.size();
  if (!true_confs.empty() && !false_confs.empty()) {
    double wins = 0;
    for (double t : true_confs) {
      for (double f : false_confs) {
        if (t > f) {
          wins += 1;
        } else if (t == f) {
          wins += 0.5;
        }
      }
    }
    result.conf_auc =
        wins / (static_cast<double>(true_confs.size()) *
                static_cast<double>(false_confs.size()));
  }
  return result;
}

void RunAblation() {
  bench::PrintHeader(
      "Ablation: pipeline design choices",
      "DESIGN.md §5 (component contributions; no single paper artifact)",
      "End-to-end KG quality with one component removed at a time.");

  CorpusConfig noisy;
  noisy.pronoun_rate = 0.5;
  noisy.alias_rate = 0.3;
  noisy.passive_rate = 0.3;
  noisy.distractor_rate = 0.6;
  auto fixture = bench::MakeDroneFixture(500, 19, 0.6, noisy);

  Nous::Options full;
  full.pipeline.lda.iterations = 30;
  full.pipeline.bpr.epochs = 10;

  struct Variant {
    std::string name;
    Nous::Options options;
  };
  std::vector<Variant> variants;
  variants.push_back({"full pipeline", full});
  {
    Nous::Options v = full;
    v.pipeline.extraction.use_coref = false;
    variants.push_back({"- coreference", v});
  }
  {
    Nous::Options v = full;
    v.pipeline.linker.coherence_weight = 0;
    variants.push_back({"- AIDA joint coherence", v});
  }
  {
    Nous::Options v = full;
    v.pipeline.linker.context_weight = 0;
    v.pipeline.linker.prior_weight = 1.0;
    variants.push_back({"- context similarity (prior only)", v});
  }
  {
    Nous::Options v = full;
    v.pipeline.enable_link_prediction = false;
    variants.push_back({"- BPR confidence", v});
  }
  {
    Nous::Options v = full;
    v.pipeline.enable_distant_supervision = false;
    variants.push_back({"- distant supervision", v});
  }
  {
    Nous::Options v = full;
    v.pipeline.enable_source_trust = false;
    variants.push_back({"- source trust", v});
  }
  {
    Nous::Options v = full;
    v.pipeline.extraction.require_entity_object = true;
    v.pipeline.extraction.allow_nary = false;
    variants.push_back({"+ strict extraction", v});
  }

  TablePrinter table({"variant", "recall", "precision",
                      "conf(true)", "conf(false)", "conf AUC"});
  for (const Variant& variant : variants) {
    AblationResult r = Evaluate(fixture, variant.options);
    table.AddRow({variant.name, TablePrinter::Num(r.recall, 3),
                  TablePrinter::Num(r.precision, 3),
                  TablePrinter::Num(r.conf_true, 3),
                  TablePrinter::Num(r.conf_false, 3),
                  TablePrinter::Num(r.conf_auc, 3)});
  }
  table.Print(std::cout);
  std::cout << "\nShape to check: removing coref costs recall (its "
               "extra tuples also cost some precision); confidence AUC "
               "stays above 0.5 so thresholding suppresses more false "
               "facts than true ones.\n";
}

/// Linking-focused ablation on an alias-stressed world: many companies
/// carry a short alias colliding with a city name, and the corpus uses
/// aliases aggressively. Disambiguation quality now shows up directly
/// in KG recall/precision.
void RunLinkingAblation() {
  std::cout << "\n-- linking ablation (alias-stressed corpus) --\n";
  DroneWorldConfig wc;
  wc.num_companies = 30;
  wc.num_people = 20;
  wc.num_products = 15;
  wc.num_events = 500;
  wc.seed = 29;
  wc.shared_alias_rate = 0.6;  // most companies have ambiguous aliases
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  KbCoverage coverage;
  coverage.entity_coverage = 0.7;
  // Fresh custom domain: no popularity statistics to lean on — the
  // setting the paper targets ("most enterprises and academic
  // institutions" lack curated popularity signals).
  coverage.flat_priors = true;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  CorpusConfig corpus;
  corpus.alias_rate = 0.8;
  corpus.pronoun_rate = 0.2;
  bench::DroneFixture fixture{std::move(world), std::move(kb), {}};
  fixture.articles =
      ArticleGenerator(&fixture.world, corpus).GenerateArticles();

  Nous::Options full;
  full.pipeline.lda.iterations = 30;
  full.pipeline.bpr.epochs = 10;

  TablePrinter table({"variant", "recall", "precision"});
  auto row = [&](const std::string& name, Nous::Options options) {
    AblationResult r = Evaluate(fixture, options);
    table.AddRow({name, TablePrinter::Num(r.recall, 3),
                  TablePrinter::Num(r.precision, 3)});
  };
  row("full linker", full);
  {
    Nous::Options v = full;
    v.pipeline.linker.context_weight = 0;
    v.pipeline.linker.prior_weight = 1.0;
    row("- context similarity (prior only)", v);
  }
  {
    Nous::Options v = full;
    v.pipeline.linker.coherence_weight = 0;
    row("- AIDA joint coherence", v);
  }
  {
    Nous::Options v = full;
    v.pipeline.linker.context_weight = 0;
    v.pipeline.linker.coherence_weight = 0;
    v.pipeline.linker.prior_weight = 1.0;
    row("prior only, no coherence", v);
  }
  table.Print(std::cout);
  std::cout << "\nMeasured finding (recorded in EXPERIMENTS.md): on this "
               "corpus the variants sit within ~0.03 of each other — "
               "the synthetic articles are 3-5 templated sentences, so "
               "the document context AIDA keys on is far weaker than "
               "in real news prose; coherence without context scores "
               "worst. The linker unit suite demonstrates the "
               "mechanics on context-rich cases "
               "(ContextDisambiguatesHomonym, "
               "NeighborhoodContextGrowsWithDynamicKg).\n";
}

/// Mention-level disambiguation accuracy — the cleanest AIDA metric:
/// the linker alone, against the corpus's gold (surface, canonical)
/// pairs, no extraction noise in the loop.
void RunMentionAccuracy() {
  std::cout << "\n-- mention-level disambiguation accuracy "
               "(alias-stressed, flat priors) --\n";
  DroneWorldConfig wc;
  wc.num_companies = 30;
  wc.num_people = 20;
  wc.num_products = 15;
  wc.num_events = 500;
  wc.seed = 31;
  wc.shared_alias_rate = 0.7;
  WorldModel world = WorldModel::BuildDroneWorld(wc);
  KbCoverage coverage;
  coverage.entity_coverage = 1.0;  // isolate disambiguation from NIL
  coverage.flat_priors = true;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(),
                                coverage);
  CorpusConfig corpus;
  corpus.alias_rate = 0.9;
  corpus.pronoun_rate = 0.0;
  auto articles = ArticleGenerator(&world, corpus).GenerateArticles();
  Lexicon lexicon = Lexicon::Default();

  auto accuracy_of = [&](LinkerConfig config) {
    PropertyGraph graph;
    EntityLinker linker(&graph, config);
    // Load curated entities the way the pipeline does.
    for (const KbEntity& e : kb.entities()) {
      VertexId v = graph.GetOrAddVertex(e.name);
      graph.SetVertexType(v, graph.types().Intern(e.type_name));
      for (const std::string& term : e.context_terms) {
        graph.AddVertexTerm(v, graph.terms().Intern(ToLower(term)));
      }
      std::vector<std::string> surfaces = e.aliases;
      surfaces.push_back(e.name);
      linker.RegisterEntity(v, surfaces, e.prior);
    }
    // Curated facts give the coherence stage a neighborhood to use.
    for (const KbFact& f : kb.facts()) {
      VertexId s = *graph.FindVertex(kb.entities()[f.subject].name);
      VertexId o = *graph.FindVertex(kb.entities()[f.object].name);
      graph.AddEdge(s, graph.predicates().Intern(f.predicate), o, {});
    }
    size_t total = 0, correct = 0;
    for (const Article& article : articles) {
      if (article.gold_mentions.empty()) continue;
      TermBag bag = BuildDocumentBag(article.text, lexicon);
      std::vector<std::string> surfaces;
      std::vector<EntityType> types;
      for (const GoldMention& m : article.gold_mentions) {
        surfaces.push_back(m.surface);
        types.push_back(EntityType::kMisc);
      }
      auto decisions = linker.LinkMentions(surfaces, types, bag);
      for (size_t i = 0; i < decisions.size(); ++i) {
        ++total;
        if (graph.VertexLabel(decisions[i].vertex) ==
            article.gold_mentions[i].canonical) {
          ++correct;
        }
      }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(correct) /
                            static_cast<double>(total);
  };

  TablePrinter table({"variant", "mention accuracy"});
  LinkerConfig full;
  table.AddRow({"full linker", TablePrinter::Num(accuracy_of(full), 3)});
  LinkerConfig no_context = full;
  no_context.context_weight = 0;
  no_context.prior_weight = 1.0;
  table.AddRow({"- context similarity",
                TablePrinter::Num(accuracy_of(no_context), 3)});
  LinkerConfig no_coherence = full;
  no_coherence.coherence_weight = 0;
  table.AddRow({"- AIDA joint coherence",
                TablePrinter::Num(accuracy_of(no_coherence), 3)});
  LinkerConfig bare = no_context;
  bare.coherence_weight = 0;
  table.AddRow({"prior only (tie-broken arbitrarily)",
                TablePrinter::Num(accuracy_of(bare), 3)});
  table.Print(std::cout);
  std::cout << "\nMeasured finding: context similarity is worth "
               "+1.4-1.5 points of mention accuracy in both the with- "
               "and without-coherence columns. Joint coherence costs "
               "~1.6 points on this corpus — co-mentioned entities are "
               "mostly NOT yet related in the curated KB (articles "
               "report novel events), so neighborhood overlap is noise "
               "here; its default weight is therefore kept small. See "
               "EXPERIMENTS.md for discussion.\n";
}

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunAblation();
  nous::RunLinkingAblation();
  nous::RunMentionAccuracy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
