// Snapshot publish cost vs graph size (ISSUE 7 / ROADMAP item 1): the
// claim under test is that copy-on-write structural sharing makes
// publish O(delta) — latency and copied bytes grow with the delta
// applied since the last publish, not with |V|+|E| — while the retired
// clone-per-publish model pays O(V+E) every time.
//
// For each graph size (1k/10k/100k vertices; --small stops at 10k) the
// harness builds a synthetic KG, then runs a steady-state publish loop:
// apply a fixed-size delta (64 edge adds + 16 confidence updates + 8
// new vertices — an IngestBatch-shaped commit), then publish a
// snapshot, in two modes:
//
//   cow     PropertyGraph::Clone() — O(1) chunk sharing, the
//           production PublishSnapshot path
//   clone   Clone() + Detach() — materializes every chunk, the
//           pre-COW deep-copy cost model
//
// Reported per (size, mode): publish p50/p99, per-publish copied
// chunks/bytes (CowCounters), snapshot private bytes + structural
// amplification ((live + snapshot_private) / live), and process peak
// RSS growth across the phase. Results land in
// BENCH_snapshot_publish.json; the committed baseline lives in
// bench/BENCH_snapshot_publish.json.
//
//   bench_snapshot_publish [--small]

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/table_printer.h"
#include "graph/cow.h"
#include "graph/property_graph.h"
#include "graph/types.h"
#include "obs/resource_sampler.h"
#include "server/json_writer.h"

namespace nous {
namespace {

// Deterministic splitmix-style generator so runs are reproducible
// without seeding policy debates.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed) {}
  uint64_t Next() {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  uint64_t Below(uint64_t n) { return Next() % n; }
};

constexpr size_t kDeltaEdges = 64;
constexpr size_t kDeltaRescores = 16;
constexpr size_t kDeltaVertices = 8;

std::string VertexLabel(size_t i) { return "Entity" + std::to_string(i); }

/// Synthetic KG: `num_vertices` vertices, ~2 edges per vertex over a
/// small predicate vocabulary, types on every vertex. Degree and
/// dictionary shapes roughly match the pipeline's fused KG.
PropertyGraph BuildGraph(size_t num_vertices, Rng* rng) {
  PropertyGraph g;
  for (size_t i = 0; i < num_vertices; ++i) {
    VertexId v = g.GetOrAddVertex(VertexLabel(i));
    g.SetVertexType(v, g.types().Intern("T" + std::to_string(i % 6)));
  }
  size_t num_edges = num_vertices * 2;
  for (size_t i = 0; i < num_edges; ++i) {
    TimedTriple t;
    t.triple.subject = VertexLabel(rng->Below(num_vertices));
    t.triple.predicate = "pred" + std::to_string(rng->Below(12));
    t.triple.object = VertexLabel(rng->Below(num_vertices));
    t.confidence = 0.5 + (rng->Below(50)) / 100.0;
    t.timestamp = static_cast<Timestamp>(1000 + i);
    t.source = "src" + std::to_string(rng->Below(4));
    g.AddTriple(t);
  }
  return g;
}

/// One IngestBatch-shaped commit: fixed size regardless of graph size.
void ApplyDelta(PropertyGraph* g, size_t num_vertices, size_t round,
                Rng* rng) {
  for (size_t i = 0; i < kDeltaEdges; ++i) {
    TimedTriple t;
    t.triple.subject = VertexLabel(rng->Below(num_vertices));
    t.triple.predicate = "pred" + std::to_string(rng->Below(12));
    t.triple.object = VertexLabel(rng->Below(num_vertices));
    t.confidence = 0.8;
    t.timestamp = static_cast<Timestamp>(100000 + round);
    t.source = "src0";
    g->AddTriple(t);
  }
  for (size_t i = 0; i < kDeltaRescores; ++i) {
    g->SetEdgeConfidence(
        static_cast<EdgeId>(rng->Below(g->NumEdgeSlots())),
        (rng->Below(100)) / 100.0);
  }
  for (size_t i = 0; i < kDeltaVertices; ++i) {
    g->GetOrAddVertex("Fresh" + std::to_string(round) + "_" +
                      std::to_string(i));
  }
}

struct PublishResult {
  std::string mode;
  size_t vertices = 0;
  size_t publishes = 0;
  double p50_us = 0;
  double p99_us = 0;
  double copied_chunks_per_publish = 0;
  double copied_bytes_per_publish = 0;
  size_t live_graph_bytes = 0;
  size_t snapshot_private_bytes = 0;
  double structural_amplification = 0;
  uint64_t peak_rss_growth_bytes = 0;
};

double Quantile(std::vector<double>* sorted_inout, double q) {
  if (sorted_inout->empty()) return 0;
  std::sort(sorted_inout->begin(), sorted_inout->end());
  size_t idx = static_cast<size_t>(q * (sorted_inout->size() - 1));
  return (*sorted_inout)[idx];
}

PublishResult RunPhase(const std::string& mode, size_t num_vertices,
                       size_t publishes) {
  Rng rng(17 + num_vertices);
  PropertyGraph g = BuildGraph(num_vertices, &rng);

  ProcMemoryStats mem_before;
  ReadProcMemoryStats(&mem_before);

  std::vector<double> latencies_us;
  latencies_us.reserve(publishes);
  uint64_t copied_chunks = 0;
  uint64_t copied_bytes = 0;
  // The "store": the latest published snapshot stays alive across the
  // next delta, exactly like SnapshotStore holding Current() — this is
  // what forces the writer to unshare the chunks the delta touches.
  std::unique_ptr<PropertyGraph> latest;

  for (size_t round = 0; round < publishes; ++round) {
    // Counters span delta + publish: COW copy work happens when the
    // delta unshares chunks still referenced by the held snapshot,
    // not at Clone() time.
    CowCounters::Reset();
    ApplyDelta(&g, num_vertices, round, &rng);
    auto start = std::chrono::steady_clock::now();
    auto snap = std::make_unique<PropertyGraph>(g.Clone());
    if (mode == "clone") snap->Detach();
    // PublishSnapshot also prices the snapshot for telemetry.
    size_t bytes = snap->ApproxMemoryBytes();
    auto end = std::chrono::steady_clock::now();
    (void)bytes;
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(end - start).count());
    copied_chunks += CowCounters::ChunkCopies().load();
    copied_bytes += CowCounters::ChunkCopyBytes().load();
    latest = std::move(snap);
  }

  // Steady-state retention: the held snapshot's private bytes while
  // the *next* delta accrues (right after a publish the snapshot
  // shares everything, which would overstate the win).
  ApplyDelta(&g, num_vertices, publishes, &rng);

  PublishResult r;
  r.mode = mode;
  r.vertices = num_vertices;
  r.publishes = publishes;
  r.p50_us = Quantile(&latencies_us, 0.50);
  r.p99_us = Quantile(&latencies_us, 0.99);
  r.copied_chunks_per_publish =
      static_cast<double>(copied_chunks) / publishes;
  r.copied_bytes_per_publish =
      static_cast<double>(copied_bytes) / publishes;
  CowFootprint live = g.Footprint();
  r.live_graph_bytes = live.total_bytes();
  r.snapshot_private_bytes =
      latest != nullptr ? latest->Footprint().private_bytes : 0;
  r.structural_amplification =
      live.total_bytes() > 0
          ? static_cast<double>(live.total_bytes() +
                                r.snapshot_private_bytes) /
                live.total_bytes()
          : 0;
  ProcMemoryStats mem_after;
  ReadProcMemoryStats(&mem_after);
  r.peak_rss_growth_bytes =
      mem_after.peak_rss_bytes > mem_before.peak_rss_bytes
          ? mem_after.peak_rss_bytes - mem_before.peak_rss_bytes
          : 0;
  return r;
}

void Run(bool small) {
  bench::PrintHeader(
      "bench_snapshot_publish",
      "ROADMAP item 1 / ISSUE 7 (O(delta) snapshot publish)",
      "publish latency + copied bytes vs graph size at fixed delta "
      "(64 edges, 16 rescores, 8 vertices per publish)");

  std::vector<size_t> sizes = {1000, 10000};
  if (!small) sizes.push_back(100000);
  size_t publishes = small ? 100 : 200;

  std::vector<PublishResult> results;
  TablePrinter table({"vertices", "mode", "publish p50 us", "publish p99 us",
                      "copied chunks/pub", "copied KiB/pub",
                      "snap private KiB", "amplification"});
  for (size_t size : sizes) {
    // COW before clone inside each size, sizes ascending, so each
    // phase's peak-RSS growth is attributable to that phase.
    for (const char* mode : {"cow", "clone"}) {
      PublishResult r = RunPhase(mode, size, publishes);
      table.AddRow({TablePrinter::Int(static_cast<long long>(r.vertices)),
                    r.mode, TablePrinter::Num(r.p50_us, 1),
                    TablePrinter::Num(r.p99_us, 1),
                    TablePrinter::Num(r.copied_chunks_per_publish, 1),
                    TablePrinter::Num(r.copied_bytes_per_publish / 1024, 1),
                    TablePrinter::Num(
                        static_cast<double>(r.snapshot_private_bytes) / 1024,
                        1),
                    TablePrinter::Num(r.structural_amplification, 3)});
      results.push_back(std::move(r));
    }
  }
  table.Print(std::cout);

  // The acceptance shape: COW p99 at the largest size vs the smallest.
  double cow_p99_small = 0, cow_p99_large = 0, clone_p99_large = 0;
  for (const PublishResult& r : results) {
    if (r.mode == "cow" && r.vertices == sizes.front()) {
      cow_p99_small = r.p99_us;
    }
    if (r.mode == "cow" && r.vertices == sizes.back()) {
      cow_p99_large = r.p99_us;
    }
    if (r.mode == "clone" && r.vertices == sizes.back()) {
      clone_p99_large = r.p99_us;
    }
  }
  std::cout << "\ncow p99 growth " << sizes.front() << " -> " << sizes.back()
            << " vertices: "
            << (cow_p99_small > 0 ? cow_p99_large / cow_p99_small : 0)
            << "x (acceptance: <= 10x); clone/cow p99 at " << sizes.back()
            << ": "
            << (cow_p99_large > 0 ? clone_p99_large / cow_p99_large : 0)
            << "x\n";

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("snapshot_publish");
  json.Key("small_preset");
  json.Bool(small);
  json.Key("delta_edges");
  json.Int(static_cast<long long>(kDeltaEdges));
  json.Key("delta_rescores");
  json.Int(static_cast<long long>(kDeltaRescores));
  json.Key("delta_vertices");
  json.Int(static_cast<long long>(kDeltaVertices));
  json.Key("publishes_per_phase");
  json.Int(static_cast<long long>(publishes));
  json.Key("cow_p99_growth_small_to_large");
  json.Number(cow_p99_small > 0 ? cow_p99_large / cow_p99_small : 0);
  json.Key("runs");
  json.BeginArray();
  for (const PublishResult& r : results) {
    json.BeginObject();
    json.Key("mode");
    json.String(r.mode);
    json.Key("vertices");
    json.Int(static_cast<long long>(r.vertices));
    json.Key("publishes");
    json.Int(static_cast<long long>(r.publishes));
    json.Key("publish_p50_us");
    json.Number(r.p50_us);
    json.Key("publish_p99_us");
    json.Number(r.p99_us);
    json.Key("copied_chunks_per_publish");
    json.Number(r.copied_chunks_per_publish);
    json.Key("copied_bytes_per_publish");
    json.Number(r.copied_bytes_per_publish);
    json.Key("live_graph_bytes");
    json.Int(static_cast<long long>(r.live_graph_bytes));
    json.Key("snapshot_private_bytes");
    json.Int(static_cast<long long>(r.snapshot_private_bytes));
    json.Key("structural_amplification");
    json.Number(r.structural_amplification);
    json.Key("peak_rss_growth_bytes");
    json.Int(static_cast<long long>(r.peak_rss_growth_bytes));
    json.EndObject();
  }
  json.EndArray();
  json.Key("peak_rss_bytes");
  json.Int(static_cast<long long>(PeakRssBytes()));
  json.EndObject();
  std::ofstream out("BENCH_snapshot_publish.json");
  out << json.Result() << "\n";
  std::cout << "wrote BENCH_snapshot_publish.json\n";
}

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--small") small = true;
  }
  nous::Run(small);
  return 0;
}
