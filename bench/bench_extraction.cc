// E2 — reproduces Figure 3 (SRL-dated triples) and demo feature 1
// ("develop custom relation extractors and illustrate the trade-off
// from various heuristics"): triple-extraction precision / recall / F1
// under different heuristic configurations and corpus noise levels,
// plus the accuracy of the dated-triple (ARG-TMP) attachment.

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "text/openie.h"
#include "text/srl.h"

namespace nous {
namespace {

struct ExtractionScore {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  double date_accuracy = 0;  // dated frames matching the gold timestamp
  double docs_per_second = 0;
};

Ner MakeNer(const Lexicon* lexicon, const WorldModel& world) {
  Ner ner(lexicon);
  for (const WorldEntity& e : world.entities()) {
    ner.AddGazetteerEntry(e.name, e.ner_type);
    for (const std::string& alias : e.aliases) {
      ner.AddGazetteerEntry(alias, e.ner_type);
    }
    if (e.ner_type == EntityType::kPerson) {
      auto words = SplitWhitespace(e.name);
      if (words.size() >= 2) ner.AddFirstName(words[0]);
    }
  }
  return ner;
}

/// Surface-level scoring: an extraction is correct when its (subject,
/// object) pair matches a gold fact of the article (canonical names —
/// alias/pronoun noise must be survived by the heuristics). Gold is
/// recovered when any extraction matches it.
ExtractionScore Score(const std::vector<Article>& articles,
                      const WorldModel& world, const OpenIeConfig& config) {
  Lexicon lexicon = Lexicon::Default();
  Ner ner = MakeNer(&lexicon, world);
  SrlExtractor srl(&lexicon, &ner, config);
  size_t gold_total = 0, recovered = 0;
  size_t extracted_total = 0, correct = 0;
  size_t dated = 0, dated_correct = 0;
  WallTimer timer;
  for (const Article& article : articles) {
    auto frames = srl.Extract(article.text, article.date);
    extracted_total += frames.size();
    for (const SrlFrame& frame : frames) {
      bool hit = false;
      for (const TimedTriple& gold : article.gold) {
        if (frame.extraction.triple.subject == gold.triple.subject &&
            frame.extraction.triple.object == gold.triple.object) {
          hit = true;
          if (frame.date.ToDayNumber() == gold.timestamp) ++dated_correct;
          ++dated;
          break;
        }
      }
      if (hit) ++correct;
    }
    for (const TimedTriple& gold : article.gold) {
      ++gold_total;
      for (const SrlFrame& frame : frames) {
        if (frame.extraction.triple.subject == gold.triple.subject &&
            frame.extraction.triple.object == gold.triple.object) {
          ++recovered;
          break;
        }
      }
    }
  }
  ExtractionScore score;
  score.docs_per_second =
      static_cast<double>(articles.size()) / timer.ElapsedSeconds();
  if (extracted_total > 0) {
    score.precision = static_cast<double>(correct) /
                      static_cast<double>(extracted_total);
  }
  if (gold_total > 0) {
    score.recall =
        static_cast<double>(recovered) / static_cast<double>(gold_total);
  }
  if (score.precision + score.recall > 0) {
    score.f1 = 2 * score.precision * score.recall /
               (score.precision + score.recall);
  }
  if (dated > 0) {
    score.date_accuracy =
        static_cast<double>(dated_correct) / static_cast<double>(dated);
  }
  return score;
}

void RunHeuristicSweep() {
  bench::PrintHeader(
      "E2: triple extraction heuristics",
      "Figure 3 + demo feature 1 (extractor trade-offs)",
      "Precision/recall/F1 per heuristic config; dates via SRL.");

  struct NamedConfig {
    std::string name;
    OpenIeConfig config;
  };
  std::vector<NamedConfig> configs;
  {
    OpenIeConfig strict;
    strict.require_entity_object = true;
    strict.allow_nary = false;
    strict.max_arg_gap = 3;
    configs.push_back({"strict (entity args, no n-ary, gap<=3)", strict});
    OpenIeConfig standard;
    configs.push_back({"default", standard});
    OpenIeConfig no_coref = standard;
    no_coref.use_coref = false;
    configs.push_back({"default - coref", no_coref});
    OpenIeConfig relaxed = standard;
    relaxed.require_entity_subject = false;
    relaxed.max_arg_gap = 10;
    configs.push_back({"relaxed (NP subjects, gap<=10)", relaxed});
  }

  for (double noise : {0.0, 0.3, 0.7}) {
    CorpusConfig corpus_config;
    corpus_config.pronoun_rate = noise;
    corpus_config.alias_rate = noise * 0.5;
    corpus_config.passive_rate = noise * 0.5;
    corpus_config.distractor_rate = noise;
    auto fixture = bench::MakeDroneFixture(400, 17, 0.6, corpus_config);
    std::cout << "\n-- corpus noise level " << noise
              << " (pronoun-heavy; alias/passive at half rate) --\n";
    TablePrinter table({"heuristic config", "precision", "recall", "F1",
                        "date acc", "docs/s"});
    for (const NamedConfig& nc : configs) {
      ExtractionScore s =
          Score(fixture.articles, fixture.world, nc.config);
      table.AddRow({nc.name, TablePrinter::Num(s.precision, 3),
                    TablePrinter::Num(s.recall, 3),
                    TablePrinter::Num(s.f1, 3),
                    TablePrinter::Num(s.date_accuracy, 3),
                    TablePrinter::Num(s.docs_per_second, 0)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nShape to check: strict config trades recall for "
               "precision; disabling coref costs recall on noisy "
               "corpora; relaxed config trades precision for recall.\n";
}

void BM_SrlExtract(benchmark::State& state) {
  auto fixture = bench::MakeDroneFixture(200);
  Lexicon lexicon = Lexicon::Default();
  Ner ner = MakeNer(&lexicon, fixture.world);
  SrlExtractor srl(&lexicon, &ner, {});
  size_t i = 0;
  for (auto _ : state) {
    const Article& a = fixture.articles[i % fixture.articles.size()];
    benchmark::DoNotOptimize(srl.Extract(a.text, a.date));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_SrlExtract);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunHeuristicSweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
