// E12 — replication fan-out (DESIGN.md §5.15): one WAL-shipping
// leader ingesting batches while 1/2/4 followers replay the stream
// and serve queries lock-free from their local snapshots. Measures
// what the serving tier promises:
//
//   lag        commit-to-applied latency: how long after IngestBatch
//              returns on the leader until *every* follower's durable
//              KG version has caught up (p50/p99 across batches)
//   qps        aggregate query throughput across all followers while
//              the stream is live (reads scale with follower count;
//              the leader's ingest path never blocks on them)
//
// Each run ends with a Finalize + convergence wait and asserts the
// followers' graphs are bit-identical to the leader's — a bench run
// that diverges is a bug, not a data point.
//
// Results land in BENCH_replication.json.
//
//   bench_replication [--small]
//
// --small shrinks the corpus and batch count for CI smoke runs.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/binary_io.h"
#include "common/status.h"
#include "common/table_printer.h"
#include "core/nous.h"
#include "durability/fs_util.h"
#include "durability/wal.h"
#include "replication/follower.h"
#include "replication/leader.h"
#include "server/json_writer.h"

namespace nous {
namespace {

struct RunResult {
  size_t followers = 0;
  size_t batches = 0;
  double lag_p50_ms = 0;
  double lag_p99_ms = 0;
  size_t queries = 0;
  double seconds = 0;
  double qps = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t checkpoints_sent = 0;
  bool bit_identical = false;
};

double Percentile(std::vector<double>* sorted_in_place, double q) {
  std::vector<double>& v = *sorted_in_place;
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t idx = static_cast<size_t>(q * static_cast<double>(v.size() - 1));
  return v[idx];
}

std::string FreshDir(const std::string& name) {
  std::string dir = "/tmp/nous_bench_replication_" + name;
  NOUS_CHECK_OK(EnsureDirectory(dir));
  for (const char* file :
       {"/wal.log", "/checkpoint.nous", "/checkpoint.nous.tmp"}) {
    NOUS_CHECK_OK(RemoveFile(dir + file));
  }
  return dir;
}

Nous::Options DurableOptions(const std::string& dir) {
  Nous::Options options;
  options.pipeline.lda.iterations = 5;
  options.pipeline.bpr.epochs = 1;
  options.pipeline.miner.min_support = 3;
  options.pipeline.num_threads = 2;
  options.durability.dir = dir;
  options.durability.fsync_policy = FsyncPolicy::kNever;
  options.durability.checkpoint_interval_batches = 0;
  return options;
}

std::unique_ptr<Nous> MakeDurableNous(const CuratedKb* kb,
                                      const std::string& dir) {
  auto nous = std::make_unique<Nous>(kb, DurableOptions(dir));
  auto recovered = nous->Recover();
  NOUS_CHECK_OK(recovered.status());
  return nous;
}

std::string GraphBytes(Nous& nous) {
  ReaderMutexLock lock(nous.kg_mutex());
  BinaryWriter w;
  nous.graph().SaveBinary(&w);
  return w.Take();
}

/// Entity-lookup query mix drawn from the leader's live snapshot so
/// followers answer real questions about the replicated graph.
std::vector<std::string> BuildQueryMix(Nous& leader, size_t count) {
  std::vector<std::string> queries;
  if (auto snap = leader.snapshot(); snap != nullptr) {
    for (VertexId v = 0;
         v < snap->graph().NumVertices() && queries.size() < count; ++v) {
      if (snap->graph().OutDegree(v) + snap->graph().InDegree(v) > 0) {
        queries.push_back("tell me about " +
                          snap->graph().VertexLabel(v));
      }
    }
  }
  if (queries.empty()) queries.push_back("what is trending");
  return queries;
}

RunResult RunOne(const bench::DroneFixture& fixture,
                 const std::vector<std::vector<Article>>& batches,
                 size_t num_followers) {
  RunResult result;
  result.followers = num_followers;

  const std::string tag = std::to_string(num_followers);
  auto leader_nous = MakeDurableNous(&fixture.kb, FreshDir("leader_" + tag));
  ReplicationLeader leader(leader_nous.get(), {});
  NOUS_CHECK_OK(leader.Start());

  std::vector<std::unique_ptr<Nous>> follower_nous;
  std::vector<std::unique_ptr<ReplicationFollower>> followers;
  for (size_t f = 0; f < num_followers; ++f) {
    follower_nous.push_back(MakeDurableNous(
        &fixture.kb,
        FreshDir("follower_" + tag + "_" + std::to_string(f))));
    ReplicationFollower::Options options;
    options.port = leader.port();
    options.reconnect_initial_ms = 20;
    options.reconnect_max_ms = 200;
    followers.push_back(std::make_unique<ReplicationFollower>(
        follower_nous.back().get(), options));
    NOUS_CHECK_OK(followers.back()->Start());
  }

  auto all_caught_up = [&](uint64_t seq, uint64_t kgv) {
    for (auto& nous : follower_nous) {
      if (nous->last_durable_seq() < seq ||
          nous->durable_kg_version() < kgv) {
        return false;
      }
    }
    return true;
  };
  auto wait_caught_up = [&](uint64_t seq, uint64_t kgv) {
    while (!all_caught_up(seq, kgv)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  // Warm batch: bring every follower online before measuring.
  NOUS_CHECK_OK(leader_nous->IngestBatch(batches[0]));
  wait_caught_up(leader_nous->last_durable_seq(),
                 leader_nous->durable_kg_version());
  std::vector<std::string> queries = BuildQueryMix(*leader_nous, 256);

  // Readers: one thread per follower firing the query mix for the
  // whole measured window. Aggregate completions / wall time = QPS.
  std::atomic<bool> stop{false};
  std::atomic<size_t> completed{0};
  std::vector<std::thread> readers;
  readers.reserve(num_followers);
  for (size_t f = 0; f < num_followers; ++f) {
    readers.emplace_back([&, f] {
      size_t i = f;  // stride offset so followers diverge in the mix
      while (!stop.load(std::memory_order_relaxed)) {
        auto answer = follower_nous[f]->Ask(queries[i % queries.size()]);
        benchmark::DoNotOptimize(answer);
        completed.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }

  // Measured window: stream the remaining batches, timing how long
  // each commit takes to reach every follower.
  std::vector<double> lags_ms;
  const auto window_start = std::chrono::steady_clock::now();
  for (size_t b = 1; b < batches.size(); ++b) {
    NOUS_CHECK_OK(leader_nous->IngestBatch(batches[b]));
    const uint64_t seq = leader_nous->last_durable_seq();
    const uint64_t kgv = leader_nous->durable_kg_version();
    const auto committed = std::chrono::steady_clock::now();
    wait_caught_up(seq, kgv);
    lags_ms.push_back(std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - committed)
                          .count());
  }
  const double window_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    window_start)
          .count();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();

  // Finalize propagates as a checkpoint image; convergence must end
  // in bit-identical graphs on every follower.
  leader_nous->Finalize();
  wait_caught_up(leader_nous->last_durable_seq(),
                 leader_nous->durable_kg_version());
  const std::string leader_bytes = GraphBytes(*leader_nous);
  result.bit_identical = true;
  for (auto& nous : follower_nous) {
    if (GraphBytes(*nous) != leader_bytes) result.bit_identical = false;
  }

  ReplicationView view = leader.View();
  result.batches = batches.size() - 1;
  result.lag_p50_ms = Percentile(&lags_ms, 0.50);
  result.lag_p99_ms = Percentile(&lags_ms, 0.99);
  result.queries = completed.load();
  result.seconds = window_seconds;
  result.qps = window_seconds > 0
                   ? static_cast<double>(result.queries) / window_seconds
                   : 0;
  result.frames_sent = view.frames_sent;
  result.bytes_sent = view.bytes_sent;
  result.checkpoints_sent = view.checkpoints_sent;

  for (auto& f : followers) f->Stop();
  leader.Stop();
  return result;
}

void RunSweep(bool small) {
  bench::PrintHeader(
      "E12: replication fan-out",
      "DESIGN.md §5.15 'fault-tolerant WAL-shipping replication'",
      "Commit-to-applied lag and aggregate follower QPS vs replica "
      "count; every run must end bit-identical.");
  const size_t events = small ? 80 : 240;
  const size_t batch_size = 4;
  const size_t max_batches = small ? 8 : 24;
  auto fixture = bench::MakeDroneFixture(events, 17, 0.6);
  std::vector<std::vector<Article>> batches;
  for (size_t start = 0; start + batch_size <= fixture.articles.size() &&
                         batches.size() < max_batches;
       start += batch_size) {
    batches.emplace_back(fixture.articles.begin() + start,
                         fixture.articles.begin() + start + batch_size);
  }

  TablePrinter table({"followers", "batches", "lag p50 ms", "lag p99 ms",
                      "queries", "qps", "frames", "MB sent",
                      "bit-identical"});
  std::vector<RunResult> results;
  for (size_t followers : {1ul, 2ul, 4ul}) {
    RunResult r = RunOne(fixture, batches, followers);
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(r.followers)),
         TablePrinter::Int(static_cast<long long>(r.batches)),
         TablePrinter::Num(r.lag_p50_ms, 2),
         TablePrinter::Num(r.lag_p99_ms, 2),
         TablePrinter::Int(static_cast<long long>(r.queries)),
         TablePrinter::Num(r.qps, 0),
         TablePrinter::Int(static_cast<long long>(r.frames_sent)),
         TablePrinter::Num(static_cast<double>(r.bytes_sent) / 1e6, 2),
         r.bit_identical ? "yes" : "NO"});
    results.push_back(std::move(r));
  }
  table.Print(std::cout);

  bool all_identical = true;
  for (const RunResult& r : results) {
    all_identical = all_identical && r.bit_identical;
  }
  std::cout << "\nbit-identical after Finalize on every run: "
            << (all_identical ? "yes" : "NO") << "\n";

  JsonWriter json;
  json.BeginObject();
  json.Key("bench");
  json.String("replication");
  json.Key("events");
  json.Int(static_cast<long long>(events));
  json.Key("articles");
  json.Int(static_cast<long long>(fixture.articles.size()));
  json.Key("batch_size");
  json.Int(static_cast<long long>(batch_size));
  json.Key("small_preset");
  json.Bool(small);
  json.Key("hardware_concurrency");
  json.Int(static_cast<long long>(std::thread::hardware_concurrency()));
  json.Key("all_runs_bit_identical");
  json.Bool(all_identical);
  json.Key("runs");
  json.BeginArray();
  for (const RunResult& r : results) {
    json.BeginObject();
    json.Key("followers");
    json.Int(static_cast<long long>(r.followers));
    json.Key("batches");
    json.Int(static_cast<long long>(r.batches));
    json.Key("lag_p50_ms");
    json.Number(r.lag_p50_ms);
    json.Key("lag_p99_ms");
    json.Number(r.lag_p99_ms);
    json.Key("queries");
    json.Int(static_cast<long long>(r.queries));
    json.Key("window_seconds");
    json.Number(r.seconds);
    json.Key("qps");
    json.Number(r.qps);
    json.Key("frames_sent");
    json.Int(static_cast<long long>(r.frames_sent));
    json.Key("bytes_sent");
    json.Int(static_cast<long long>(r.bytes_sent));
    json.Key("checkpoints_sent");
    json.Int(static_cast<long long>(r.checkpoints_sent));
    json.Key("bit_identical");
    json.Bool(r.bit_identical);
    json.EndObject();
  }
  json.EndArray();
  json.Key("peak_rss_bytes");
  json.Int(static_cast<long long>(PeakRssBytes()));
  json.EndObject();
  std::ofstream out("BENCH_replication.json");
  out << json.Result() << "\n";
  std::cout << "wrote BENCH_replication.json\n";
}

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  bool small = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  benchmark::Initialize(&argc, argv);
  nous::RunSweep(small);
  return 0;
}
