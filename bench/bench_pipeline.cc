// E8 — reproduces Figure 1 / §1 contribution 3: the end-to-end
// construction pipeline on a streaming corpus. Per-stage cost
// breakdown, document/triple throughput, and the multi-source
// property: the fraction of relationship answers whose evidence spans
// two or more distinct data sources ("connect the dots across multiple
// data sources").

#include <benchmark/benchmark.h>

#include <iostream>
#include <set>

#include "bench_util.h"
#include "common/random.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/nous.h"

namespace nous {
namespace {

void RunThroughput() {
  bench::PrintHeader(
      "E8: end-to-end pipeline",
      "Figure 1 (system) + §1 contribution 3 (multi-source answers)",
      "Stage breakdown, throughput, and evidence source spread.");
  TablePrinter table({"events", "articles", "docs/s", "triples/s",
                      "extract %", "link %", "map %", "score %",
                      "mine %"});
  for (size_t events : {200ul, 400ul, 800ul}) {
    CorpusConfig corpus_config;
    corpus_config.sources = {"wsj", "webcrawl", "technews"};
    auto fixture = bench::MakeDroneFixture(events, 17, 0.6,
                                           corpus_config);
    Nous nous(&fixture.kb);
    WallTimer timer;
    for (const Article& a : fixture.articles) nous.Ingest(a);
    double ingest_seconds = timer.ElapsedSeconds();
    const PipelineStats& ps = nous.stats();
    double stage_total = ps.extract_seconds + ps.link_seconds +
                         ps.map_seconds + ps.score_seconds +
                         ps.mine_seconds;
    if (stage_total <= 0) stage_total = 1e-9;
    auto pct = [&](double s) {
      return TablePrinter::Num(100.0 * s / stage_total, 1);
    };
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(events)),
         TablePrinter::Int(static_cast<long long>(ps.documents)),
         TablePrinter::Num(static_cast<double>(ps.documents) /
                               ingest_seconds, 1),
         TablePrinter::Num(static_cast<double>(ps.accepted_triples) /
                               ingest_seconds, 1),
         pct(ps.extract_seconds), pct(ps.link_seconds),
         pct(ps.map_seconds), pct(ps.score_seconds),
         pct(ps.mine_seconds)});
  }
  table.Print(std::cout);
}

void RunMultiSource() {
  std::cout << "\n-- multi-source relationship answers (800 events, 3 "
               "feeds) --\n";
  CorpusConfig corpus_config;
  corpus_config.sources = {"wsj", "webcrawl", "technews"};
  auto fixture = bench::MakeDroneFixture(800, 23, 0.6, corpus_config);
  Nous nous(&fixture.kb);
  for (const Article& a : fixture.articles) nous.Ingest(a);
  nous.Finalize();

  // Sample connected (s, t) pairs two hops apart and ask for
  // explanations.
  const PropertyGraph& g = nous.graph();
  Rng rng(41);
  size_t asked = 0, answered = 0, multi_source = 0;
  Histogram sources_per_answer;
  size_t attempts = 0;
  while (asked < 60 && attempts++ < 2000) {
    VertexId s = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    if (g.OutDegree(s) == 0) continue;
    const AdjEntry& hop1 =
        g.OutEdges(s)[rng.UniformInt(g.OutDegree(s))];
    if (g.OutDegree(hop1.neighbor) == 0) continue;
    const AdjEntry& hop2 = g.OutEdges(
        hop1.neighbor)[rng.UniformInt(g.OutDegree(hop1.neighbor))];
    if (hop2.neighbor == s) continue;
    ++asked;
    auto answer = nous.Ask("explain " + g.VertexLabel(s) + " and " +
                           g.VertexLabel(hop2.neighbor));
    if (!answer.ok() || answer->paths.empty()) continue;
    ++answered;
    sources_per_answer.Add(
        static_cast<double>(answer->distinct_sources));
    if (answer->distinct_sources >= 2) ++multi_source;
  }
  TablePrinter table({"asked", "answered", ">=2 sources",
                      "multi-source frac", "mean sources/answer"});
  table.AddRow(
      {TablePrinter::Int(static_cast<long long>(asked)),
       TablePrinter::Int(static_cast<long long>(answered)),
       TablePrinter::Int(static_cast<long long>(multi_source)),
       TablePrinter::Num(answered == 0
                             ? 0.0
                             : static_cast<double>(multi_source) /
                                   static_cast<double>(answered), 3),
       TablePrinter::Num(sources_per_answer.Mean(), 2)});
  table.Print(std::cout);
  std::cout << "\nShape to check: a majority of explanation answers "
               "compose evidence from 2+ sources (curated KB counts as "
               "a source) — the capability text-passage systems lack.\n";
}

void BM_PipelineIngest(benchmark::State& state) {
  auto fixture = bench::MakeDroneFixture(300);
  Nous nous(&fixture.kb);
  size_t i = 0;
  for (auto _ : state) {
    nous.Ingest(fixture.articles[i % fixture.articles.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_PipelineIngest);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  nous::RunThroughput();
  nous::RunMultiSource();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
