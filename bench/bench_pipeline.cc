// E8 — reproduces Figure 1 / §1 contribution 3: the end-to-end
// construction pipeline on a streaming corpus. Per-stage cost
// breakdown, document/triple throughput, the parallel-ingest speedup
// sweep (writes BENCH_pipeline.json), and the multi-source property:
// the fraction of relationship answers whose evidence spans two or
// more distinct data sources ("connect the dots across multiple data
// sources").
//
//   bench_pipeline [--threads N]   # sweep caps at N (default:
//                                  # hardware concurrency)
//   bench_pipeline [--shards N]    # sharded-commit sweep caps at N
//                                  # (default: 8)

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/kg_ops.h"
#include "core/nous.h"
#include "corpus/document_stream.h"
#include "durability/fs_util.h"
#include "server/json_writer.h"
#include "common/status.h"

namespace nous {
namespace {

void RunThroughput() {
  bench::PrintHeader(
      "E8: end-to-end pipeline",
      "Figure 1 (system) + §1 contribution 3 (multi-source answers)",
      "Stage breakdown, throughput, and evidence source spread.");
  TablePrinter table({"events", "articles", "docs/s", "triples/s",
                      "extract %", "link %", "map %", "score %",
                      "mine %"});
  for (size_t events : {200ul, 400ul, 800ul}) {
    CorpusConfig corpus_config;
    corpus_config.sources = {"wsj", "webcrawl", "technews"};
    auto fixture = bench::MakeDroneFixture(events, 17, 0.6,
                                           corpus_config);
    Nous nous(&fixture.kb);
    WallTimer timer;
    for (const Article& a : fixture.articles) NOUS_CHECK_OK(nous.Ingest(a));
    double ingest_seconds = timer.ElapsedSeconds();
    const PipelineStats& ps = nous.stats();
    double stage_total = ps.extract_seconds + ps.link_seconds +
                         ps.map_seconds + ps.score_seconds +
                         ps.mine_seconds;
    if (stage_total <= 0) stage_total = 1e-9;
    auto pct = [&](double s) {
      return TablePrinter::Num(100.0 * s / stage_total, 1);
    };
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(events)),
         TablePrinter::Int(static_cast<long long>(ps.documents)),
         TablePrinter::Num(static_cast<double>(ps.documents) /
                               ingest_seconds, 1),
         TablePrinter::Num(static_cast<double>(ps.accepted_triples) /
                               ingest_seconds, 1),
         pct(ps.extract_seconds), pct(ps.link_seconds),
         pct(ps.map_seconds), pct(ps.score_seconds),
         pct(ps.mine_seconds)});
  }
  table.Print(std::cout);
}

/// Parallel-ingest sweep: the same 400-event corpus at 1..N pipeline
/// threads. Ingestion goes through Nous::IngestStream (batched
/// IngestBatch), so extraction fans out while fusion stays ordered —
/// the resulting KG must be identical at every thread count, which the
/// sweep asserts. Results land in BENCH_pipeline.json (written by
/// main, which appends the sharded-commit sweep to the same object).
void RunParallelIngest(size_t max_threads, JsonWriter* out) {
  bench::PrintHeader(
      "E8b: parallel ingest speedup",
      "§4 scalability ('scales gracefully with stream rate')",
      "docs/sec and per-stage seconds, 1 vs N extraction threads.");
  std::vector<size_t> sweep;
  for (size_t t : {1ul, 2ul, 4ul, 8ul}) {
    if (t <= max_threads) sweep.push_back(t);
  }
  if (sweep.empty() || sweep.back() != max_threads) {
    sweep.push_back(max_threads);
  }

  CorpusConfig corpus_config;
  corpus_config.sources = {"wsj", "webcrawl", "technews"};
  auto fixture = bench::MakeDroneFixture(400, 17, 0.6, corpus_config);

  TablePrinter table({"threads", "seconds", "docs/s", "speedup",
                      "extract s", "link s", "map s", "score s",
                      "mine s"});
  JsonWriter& json = *out;
  json.Key("bench");
  json.String("pipeline_parallel_ingest");
  json.Key("events");
  json.Int(400);
  json.Key("articles");
  json.Int(static_cast<long long>(fixture.articles.size()));
  json.Key("hardware_concurrency");
  json.Int(static_cast<long long>(std::thread::hardware_concurrency()));
  json.Key("runs");
  json.BeginArray();

  double serial_seconds = 0;
  size_t baseline_vertices = 0, baseline_edges = 0;
  for (size_t threads : sweep) {
    // Reset per run so the publish quantiles below describe this
    // thread count only.
    MetricsRegistry::Global().ResetAll();
    Nous::Options options;
    options.pipeline.num_threads = threads;
    Nous nous(&fixture.kb, options);
    DocumentStream stream(fixture.articles);
    WallTimer timer;
    NOUS_CHECK_OK(nous.IngestStream(&stream, /*finalize=*/false));
    double seconds = timer.ElapsedSeconds();
    if (threads == sweep.front()) serial_seconds = seconds;
    const PipelineStats& ps = nous.stats();
    size_t vertices = nous.graph().NumVertices();
    size_t edges = nous.graph().NumEdges();
    if (threads == sweep.front()) {
      baseline_vertices = vertices;
      baseline_edges = edges;
    } else if (vertices != baseline_vertices ||
               edges != baseline_edges) {
      std::cout << "WARNING: KG diverged at " << threads
                << " threads (" << vertices << "v/" << edges
                << "e vs " << baseline_vertices << "v/"
                << baseline_edges << "e)\n";
    }
    double docs_per_sec =
        static_cast<double>(ps.documents) / std::max(seconds, 1e-9);
    double speedup = serial_seconds / std::max(seconds, 1e-9);
    table.AddRow(
        {TablePrinter::Int(static_cast<long long>(threads)),
         TablePrinter::Num(seconds, 2),
         TablePrinter::Num(docs_per_sec, 1),
         TablePrinter::Num(speedup, 2),
         TablePrinter::Num(ps.extract_seconds, 2),
         TablePrinter::Num(ps.link_seconds, 2),
         TablePrinter::Num(ps.map_seconds, 2),
         TablePrinter::Num(ps.score_seconds, 2),
         TablePrinter::Num(ps.mine_seconds, 2)});
    json.BeginObject();
    json.Key("threads");
    json.Int(static_cast<long long>(threads));
    json.Key("seconds");
    json.Number(seconds);
    json.Key("docs_per_sec");
    json.Number(docs_per_sec);
    json.Key("speedup_vs_1_thread");
    json.Number(speedup);
    json.Key("extract_seconds");
    json.Number(ps.extract_seconds);
    json.Key("link_seconds");
    json.Number(ps.link_seconds);
    json.Key("map_seconds");
    json.Number(ps.map_seconds);
    json.Key("score_seconds");
    json.Number(ps.score_seconds);
    json.Key("mine_seconds");
    json.Number(ps.mine_seconds);
    json.Key("vertices");
    json.Int(static_cast<long long>(vertices));
    json.Key("edges");
    json.Int(static_cast<long long>(edges));
    bench::LatencyQuantilesUs publish = bench::GlobalHistogramQuantilesUs(
        "nous_snapshot_publish_latency_seconds");
    json.Key("publish_count");
    json.Int(static_cast<long long>(publish.count));
    json.Key("publish_p50_us");
    json.Number(publish.p50_us);
    json.Key("publish_p99_us");
    json.Number(publish.p99_us);
    json.Key("peak_rss_bytes");
    json.Int(static_cast<long long>(PeakRssBytes()));
    json.EndObject();
  }
  json.EndArray();
  json.Key("peak_rss_bytes");
  json.Int(static_cast<long long>(PeakRssBytes()));
  table.Print(std::cout);
  std::cout << "\nKG identical across thread counts: extraction "
               "parallel, fusion ordered\n";
}

/// A scratch durability directory with no stale WAL/checkpoint files
/// from an earlier run (legacy and sharded layouts both).
std::string FreshCommitDir(size_t shards) {
  std::string dir = "/tmp/nous_bench_shard_" + std::to_string(shards);
  NOUS_CHECK_OK(EnsureDirectory(dir));
  for (const char* file : {"/wal.log", "/checkpoint.nous",
                           "/checkpoint.nous.tmp", "/wal/manifest.nous",
                           "/wal/manifest.nous.tmp"}) {
    NOUS_CHECK_OK(RemoveFile(dir + file));
  }
  for (size_t k = 0; k < kMaxShards; ++k) {
    std::string shard_dir = dir + "/wal/shard-" + std::to_string(k);
    for (const char* file :
         {"/wal.log", "/checkpoint.nous", "/checkpoint.nous.tmp"}) {
      NOUS_CHECK_OK(RemoveFile(shard_dir + file));
    }
  }
  return dir;
}

/// Sharded durable-commit sweep (DESIGN.md §5.16): 8 writer threads
/// committing single-article batches with fsync-per-commit
/// (FsyncPolicy::kAlways). shards=1 is the legacy path — one WAL with
/// the fsync inside the ingest critical section, so every commit pays
/// the flush serially. shards >= 2 append to per-shard WAL segments
/// and the commit lanes group-commit the fsyncs off the critical
/// path, so concurrent writers overlap their durable waits. The
/// headline row is 4 shards: target >= 1.8x the 1-shard commit rate.
void RunShardedCommit(size_t max_shards, JsonWriter* out) {
  bench::PrintHeader(
      "E8c: sharded durable commit throughput",
      "DESIGN.md §5.16 (hash-sharded KG, per-shard WALs)",
      "8 writers, fsync per commit; 1 shard = legacy single-WAL path.");
  constexpr size_t kWriters = 8;
  // This container's page cache acks fsync in ~0.15 ms; production
  // block storage takes 1-5 ms. Pad every WAL fsync (both the legacy
  // single-WAL path and the shard lanes — the injection point is
  // shared) to a realistic floor so the sweep measures how each
  // commit tier handles real storage, not the host's write cache.
  constexpr int64_t kFsyncDelayMs = 1;
  CorpusConfig corpus_config;
  corpus_config.sources = {"wsj", "webcrawl", "technews"};
  // Single-fact articles with the noise knobs off: per-commit pipeline
  // CPU stays minimal, so the durable flush dominates — the regime the
  // sharded commit tier exists for (extraction cost has its own sweeps
  // above).
  corpus_config.min_facts_per_article = 1;
  corpus_config.max_facts_per_article = 1;
  corpus_config.pronoun_rate = 0;
  corpus_config.alias_rate = 0;
  corpus_config.passive_rate = 0;
  corpus_config.distractor_rate = 0;
  corpus_config.flavor_rate = 0;
  corpus_config.date_mention_rate = 0;
  auto fixture = bench::MakeDroneFixture(400, 29, 0.6, corpus_config);
  std::cout << "fsync latency padded to " << kFsyncDelayMs
            << " ms (production-storage floor; this host's cache syncs "
               "in ~0.15 ms)\n";
  FaultInjector::Global().Arm("wal_fsync", FaultKind::kDelay, 1,
                              /*sticky=*/true, kFsyncDelayMs);

  std::vector<size_t> sweep;
  for (size_t s : {1ul, 2ul, 4ul, 8ul}) {
    if (s <= max_shards && s <= kMaxShards) sweep.push_back(s);
  }

  TablePrinter table(
      {"shards", "seconds", "commits/s", "speedup vs 1 shard", "edges"});
  JsonWriter& json = *out;
  json.Key("sharded_commit");
  json.BeginObject();
  json.Key("writers");
  json.Int(kWriters);
  json.Key("commits");
  json.Int(static_cast<long long>(fixture.articles.size()));
  json.Key("fsync_policy");
  json.String("always");
  json.Key("fsync_delay_ms");
  json.Int(kFsyncDelayMs);
  json.Key("target_speedup_4_shard");
  json.Number(1.8);
  json.Key("runs");
  json.BeginArray();

  double base_rate = 0;
  for (size_t shards : sweep) {
    Nous::Options options;
    options.shards = shards;
    // Commit-bound configuration: batch analytics (mining, link
    // prediction) off and topic inference short, so each commit is
    // dominated by the WAL flush rather than model refreshes.
    options.pipeline.enable_mining = false;
    options.pipeline.enable_link_prediction = false;
    options.pipeline.lda.iterations = 5;
    options.durability.dir = FreshCommitDir(shards);
    options.durability.fsync_policy = FsyncPolicy::kAlways;
    Nous nous(&fixture.kb, options);
    NOUS_CHECK_OK(nous.EnableDurability());

    std::atomic<size_t> next{0};
    WallTimer timer;
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (size_t w = 0; w < kWriters; ++w) {
      writers.emplace_back([&] {
        for (;;) {
          size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= fixture.articles.size()) return;
          NOUS_CHECK_OK(nous.Ingest(fixture.articles[i]));
        }
      });
    }
    for (auto& t : writers) t.join();
    double seconds = timer.ElapsedSeconds();
    if (shards > 1) nous.DrainShards();

    double rate = static_cast<double>(fixture.articles.size()) /
                  std::max(seconds, 1e-9);
    if (shards == sweep.front()) base_rate = rate;
    double speedup = rate / std::max(base_rate, 1e-9);
    size_t edges = nous.graph().NumEdges();
    table.AddRow({TablePrinter::Int(static_cast<long long>(shards)),
                  TablePrinter::Num(seconds, 2),
                  TablePrinter::Num(rate, 1),
                  TablePrinter::Num(speedup, 2),
                  TablePrinter::Int(static_cast<long long>(edges))});
    json.BeginObject();
    json.Key("shards");
    json.Int(static_cast<long long>(shards));
    json.Key("seconds");
    json.Number(seconds);
    json.Key("commits_per_sec");
    json.Number(rate);
    json.Key("speedup_vs_1_shard");
    json.Number(speedup);
    json.Key("edges");
    json.Int(static_cast<long long>(edges));
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  FaultInjector::Global().Disarm("wal_fsync");
  table.Print(std::cout);
  std::cout << "\nShape to check: the 4-shard row commits >= 1.8x the "
               "1-shard rate — the per-shard lanes group-commit and "
               "overlap WAL fsyncs the legacy path serializes under "
               "the ingest lock.\n";
}

void RunMultiSource() {
  std::cout << "\n-- multi-source relationship answers (800 events, 3 "
               "feeds) --\n";
  CorpusConfig corpus_config;
  corpus_config.sources = {"wsj", "webcrawl", "technews"};
  auto fixture = bench::MakeDroneFixture(800, 23, 0.6, corpus_config);
  Nous nous(&fixture.kb);
  for (const Article& a : fixture.articles) NOUS_CHECK_OK(nous.Ingest(a));
  nous.Finalize();

  // Sample connected (s, t) pairs two hops apart and ask for
  // explanations.
  const PropertyGraph& g = nous.graph();
  Rng rng(41);
  size_t asked = 0, answered = 0, multi_source = 0;
  Histogram sources_per_answer;
  size_t attempts = 0;
  while (asked < 60 && attempts++ < 2000) {
    VertexId s = static_cast<VertexId>(rng.UniformInt(g.NumVertices()));
    if (g.OutDegree(s) == 0) continue;
    const AdjEntry& hop1 =
        g.OutEdges(s)[rng.UniformInt(g.OutDegree(s))];
    if (g.OutDegree(hop1.neighbor) == 0) continue;
    const AdjEntry& hop2 = g.OutEdges(
        hop1.neighbor)[rng.UniformInt(g.OutDegree(hop1.neighbor))];
    if (hop2.neighbor == s) continue;
    ++asked;
    auto answer = nous.Ask("explain " + g.VertexLabel(s) + " and " +
                           g.VertexLabel(hop2.neighbor));
    if (!answer.ok() || answer->paths.empty()) continue;
    ++answered;
    sources_per_answer.Add(
        static_cast<double>(answer->distinct_sources));
    if (answer->distinct_sources >= 2) ++multi_source;
  }
  TablePrinter table({"asked", "answered", ">=2 sources",
                      "multi-source frac", "mean sources/answer"});
  table.AddRow(
      {TablePrinter::Int(static_cast<long long>(asked)),
       TablePrinter::Int(static_cast<long long>(answered)),
       TablePrinter::Int(static_cast<long long>(multi_source)),
       TablePrinter::Num(answered == 0
                             ? 0.0
                             : static_cast<double>(multi_source) /
                                   static_cast<double>(answered), 3),
       TablePrinter::Num(sources_per_answer.Mean(), 2)});
  table.Print(std::cout);
  std::cout << "\nShape to check: a majority of explanation answers "
               "compose evidence from 2+ sources (curated KB counts as "
               "a source) — the capability text-passage systems lack.\n";
}

void BM_PipelineIngest(benchmark::State& state) {
  auto fixture = bench::MakeDroneFixture(300);
  Nous nous(&fixture.kb);
  size_t i = 0;
  for (auto _ : state) {
    NOUS_CHECK_OK(nous.Ingest(fixture.articles[i % fixture.articles.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_PipelineIngest);

}  // namespace
}  // namespace nous

int main(int argc, char** argv) {
  size_t max_threads = 0;
  size_t max_shards = 8;
  // Consume --threads / --shards ourselves (compacting argv) so the
  // remaining flags go to the benchmark library untouched. Checked
  // parsing: "--threads 4x" is an error, not 4 (atoi's old behavior).
  auto parse = [](const char* flag, const std::string& text, size_t* value,
                  size_t min, size_t max) {
    if (!nous::ParseSize(text, value, min, max)) {
      std::cerr << "invalid " << flag << " '" << text
                << "': expected an integer in [" << min << ", " << max
                << "]\n";
      std::exit(2);
    }
  };
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      parse("--threads", argv[++i], &max_threads, 1, 1024);
    } else if (arg.rfind("--threads=", 0) == 0) {
      parse("--threads", arg.substr(10), &max_threads, 1, 1024);
    } else if (arg == "--shards" && i + 1 < argc) {
      parse("--shards", argv[++i], &max_shards, 1, nous::kMaxShards);
    } else if (arg.rfind("--shards=", 0) == 0) {
      parse("--shards", arg.substr(9), &max_shards, 1, nous::kMaxShards);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (max_threads == 0) {
    max_threads = std::thread::hardware_concurrency();
    if (max_threads == 0) max_threads = 1;
  }
  nous::JsonWriter json;
  json.BeginObject();
  nous::RunParallelIngest(max_threads, &json);
  nous::RunShardedCommit(max_shards, &json);
  json.EndObject();
  {
    std::ofstream file("BENCH_pipeline.json");
    file << json.Result() << "\n";
  }
  std::cout << "\nwrote BENCH_pipeline.json (parallel-ingest + "
               "sharded-commit sweeps)\n";
  nous::RunThroughput();
  nous::RunMultiSource();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
