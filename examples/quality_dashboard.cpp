// Quality dashboard (the paper's demo feature 2: "Visualize the
// resultant graph and summarization of quality-related statistics,
// such as confidence distributions, and understanding how the
// structure of the underlying data influence the output quality").
//
// Prints, for a freshly constructed KG: graph composition, the
// extracted-confidence histogram, per-predicate counts, per-source
// trust, and the most- and least-confident facts.

#include <algorithm>
#include <iostream>
#include <vector>

#include <fstream>

#include "common/string_util.h"
#include "common/table_printer.h"
#include "core/nous.h"
#include "obs/metrics.h"
#include "graph/dot_export.h"
#include "graph/graph_algorithms.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

int main() {
  using namespace nous;

  DroneWorldConfig world_config;
  world_config.num_events = 400;
  WorldModel world = WorldModel::BuildDroneWorld(world_config);
  KbCoverage coverage;
  coverage.entity_coverage = 0.6;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  CorpusConfig corpus_config;
  corpus_config.pronoun_rate = 0.4;
  corpus_config.sources = {"wsj", "webcrawl", "technews", "blogfeed"};
  DocumentStream stream(
      ArticleGenerator(&world, corpus_config).GenerateArticles());

  Nous nous(&kb);
  std::cout << "=== NOUS quality dashboard ===\n";
  std::cout << "Ingesting " << stream.TotalCount() << " articles...\n\n";
  NOUS_CHECK_OK(nous.IngestStream(&stream));

  GraphStats stats = nous.ComputeStats();
  std::cout << "-- graph composition --\n" << stats.ToString() << "\n";
  std::cout << "-- pipeline counters --\n"
            << nous.stats().ToString() << "\n\n";

  std::cout << "-- extracted-confidence distribution --\n";
  auto buckets = stats.extracted_confidence.Bucketize(0.0, 1.0, 10);
  size_t max_count = 1;
  for (size_t c : buckets) max_count = std::max(max_count, c);
  for (size_t b = 0; b < buckets.size(); ++b) {
    size_t bar = buckets[b] * 50 / max_count;
    std::cout << StrFormat("[%.1f-%.1f) %5zu |%s\n", 0.1 * b,
                           0.1 * (b + 1), buckets[b],
                           std::string(bar, '#').c_str());
  }

  std::cout << "\n-- edges per predicate --\n";
  TablePrinter predicates({"predicate", "edges"});
  for (const auto& [name, count] : stats.per_predicate) {
    predicates.AddRow(
        {name, TablePrinter::Int(static_cast<long long>(count))});
  }
  predicates.Print(std::cout);

  std::cout << "\n-- source trust (corroboration rate vs corpus base "
               "rate) --\n";
  const PropertyGraph& g = nous.graph();
  const SourceTrustTracker& trust = nous.pipeline().source_trust();
  TablePrinter sources({"source", "corroboration rate",
                        "relative trust", "observations"});
  for (SourceId s : trust.KnownSources()) {
    sources.AddRow({g.sources().GetString(s),
                    TablePrinter::Num(trust.Trust(s), 3),
                    TablePrinter::Num(trust.RelativeTrust(s), 3),
                    TablePrinter::Num(trust.Observations(s), 0)});
  }
  sources.Print(std::cout);
  std::cout << StrFormat("corpus base rate: %.3f\n", trust.GlobalRate());

  // Most and least confident extracted facts — the triage view an
  // analyst uses to spot extraction problems.
  struct Scored {
    double confidence;
    std::string text;
  };
  std::vector<Scored> facts;
  g.ForEachEdge([&](EdgeId, const EdgeRecord& rec) {
    if (rec.meta.curated) return;
    facts.push_back(Scored{
        rec.meta.confidence,
        StrFormat("(%s, %s, %s) [%s]",
                  g.VertexLabel(rec.subject).c_str(),
                  g.predicates().GetString(rec.predicate).c_str(),
                  g.VertexLabel(rec.object).c_str(),
                  rec.meta.source == kInvalidSource
                      ? "?"
                      : g.sources().GetString(rec.meta.source).c_str())});
  });
  std::sort(facts.begin(), facts.end(),
            [](const Scored& a, const Scored& b) {
              return a.confidence > b.confidence;
            });
  std::cout << "\n-- most confident extracted facts --\n";
  for (size_t i = 0; i < facts.size() && i < 5; ++i) {
    std::cout << StrFormat("  %.3f %s\n", facts[i].confidence,
                           facts[i].text.c_str());
  }
  std::cout << "-- least confident extracted facts --\n";
  for (size_t i = facts.size() > 5 ? facts.size() - 5 : 0;
       i < facts.size(); ++i) {
    std::cout << StrFormat("  %.3f %s\n", facts[i].confidence,
                           facts[i].text.c_str());
  }

  // -- structural view: components, central entities, ego export --
  size_t components = 0;
  WeaklyConnectedComponents(g, &components);
  std::cout << StrFormat("\n-- structure: %zu weakly connected "
                         "component(s) --\n",
                         components);
  auto rank = PageRank(g);
  std::vector<VertexId> by_rank(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) by_rank[v] = v;
  std::sort(by_rank.begin(), by_rank.end(),
            [&rank](VertexId a, VertexId b) { return rank[a] > rank[b]; });
  std::cout << "central entities by PageRank:\n";
  for (size_t i = 0; i < by_rank.size() && i < 8; ++i) {
    std::cout << StrFormat("  %.4f %s\n", rank[by_rank[i]],
                           g.VertexLabel(by_rank[i]).c_str());
  }

  // Runtime telemetry for the same run: stage counters and latency
  // quantiles from the process-wide registry.
  std::cout << "\n";
  MetricsRegistry::Global().PrintSummary(std::cout);

  // Export DJI's 1-hop neighborhood for Graphviz rendering
  // (red = curated edges, blue = extracted — Figure 2's convention).
  if (auto dji = g.FindVertex("DJI")) {
    DotOptions dot_options;
    dot_options.vertices = EgoNetwork(g, *dji, 1);
    dot_options.graph_name = "dji_ego";
    std::ofstream out("dji_ego.dot");
    if (out.is_open() && WriteDot(g, dot_options, out).ok()) {
      std::cout << "\nwrote dji_ego.dot (" << dot_options.vertices.size()
                << " vertices) — render with: dot -Tsvg dji_ego.dot\n";
    }
  }
  return 0;
}
