// Insider-threat detection (§3.1 domain 2): enterprise log events
// ("<user> accessed <resource> on <date>") stream through the same
// construction pipeline, and the streaming miner surfaces frequent
// access structure; trending queries expose bursts of activity.

#include <iostream>

#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

int main() {
  using namespace nous;

  WorldModel world = WorldModel::BuildEnterpriseWorld(
      /*num_users=*/15, /*num_resources=*/10, /*seed=*/11);
  // The enterprise directory is fully curated (we know our employees
  // and servers); the *events* arrive from logs.
  KbCoverage coverage;
  coverage.entity_coverage = 1.0;
  coverage.fact_coverage = 1.0;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);

  CorpusConfig corpus_config;
  corpus_config.pronoun_rate = 0.0;  // logs do not pronominalize
  corpus_config.alias_rate = 0.0;
  corpus_config.distractor_rate = 0.0;
  corpus_config.min_facts_per_article = 1;
  corpus_config.max_facts_per_article = 3;
  corpus_config.sources = {"auth_log", "file_log", "mail_log"};
  DocumentStream stream(
      ArticleGenerator(&world, corpus_config).GenerateArticles());

  Nous::Options options;
  options.pipeline.miner.use_vertex_types = true;
  options.pipeline.miner.min_support = 3;
  options.pipeline.miner.max_edges = 2;
  options.query.trending_horizon = 30;  // a month of log time
  Nous nous(&kb, options);

  std::cout << "=== NOUS insider-threat monitor ===\n";
  std::cout << "Replaying " << stream.TotalCount() << " log batches...\n";
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  std::cout << nous.ComputeStats().ToString() << "\n";

  std::cout << "Q: what is trending (last 30 days of log time)\n";
  if (auto a = nous.Ask("what is trending"); a.ok()) {
    std::cout << a->Render(nous.graph()) << "\n";
  }

  std::cout << "Q: show patterns (frequent access structure)\n";
  if (auto a = nous.Ask("show patterns"); a.ok()) {
    std::cout << a->Render(nous.graph()) << "\n";
  }

  // Entity drill-down on the most active user.
  if (auto trending = nous.Ask("what is trending");
      trending.ok() && !trending->hot_entities.empty()) {
    std::string who = trending->hot_entities[0].first;
    std::cout << "Q: tell me about " << who << "\n";
    if (auto a = nous.Ask("tell me about " + who); a.ok()) {
      std::cout << a->Render(nous.graph()) << "\n";
    }
  }
  return 0;
}
