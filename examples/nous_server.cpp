// Web demo (the paper's Figure 6): builds a drone-domain KG from a
// synthetic stream and serves the query interface over HTTP.
//
//   nous_server [port] [num_events] [--threads N] [--wal-dir DIR]
//               [--checkpoint-interval N] [--fsync MODE]
//               [--query-cache-entries N] [--no-query-cache]
//               [--slow-query-ms MS] [--replicate-to PORT]
//               [--follow HOST:PORT] [--max-staleness-versions N]
//
// --threads N sets both the pipeline's extraction/BPR worker pool and
// the number of concurrent HTTP connection handlers (default: the
// machine's hardware concurrency). The built KG is identical for
// every value.
//
// --query-cache-entries N bounds the versioned answer cache (LRU, N
// entries, default 1024); --no-query-cache disables it. Either way,
// queries serve from immutable KG snapshots and never block ingest
// (DESIGN.md §5.11).
//
// --wal-dir DIR makes ingest crash-safe (DESIGN.md §5.10): the server
// recovers whatever a previous run left in DIR (checkpoint + WAL
// replay, skipping the demo build), then logs every new ingest before
// applying it. --checkpoint-interval N checkpoints every N logged
// batches (default 8; 0 = only on shutdown); --fsync always|interval|
// never picks the WAL flush policy.
//
// --slow-query-ms MS logs a Warning with trace id + per-stage
// breakdown for every request slower than MS milliseconds (also
// settable via the NOUS_SLOW_QUERY_MS environment variable; the flag
// wins). A background ResourceSampler exports RSS, snapshot clone
// bytes, cache hit ratio, and queue depth through /api/metrics.
//
// Replication (DESIGN.md §5.15; both modes require --wal-dir):
//   --replicate-to PORT   serve the durability WAL to followers on
//                         127.0.0.1:PORT (this process is the leader)
//   --follow HOST:PORT    become a read-only follower of the leader at
//                         HOST:PORT: skip the demo build, replay the
//                         leader's stream, reject POST /api/ingest
//                         with 403
//   --max-staleness-versions N   follower readiness gate: /api/readyz
//                         turns 503 while this replica lags the leader
//                         by more than N KG versions
// Every HTTP response carries X-Nous-Kg-Version, the KG version the
// process served, so clients can bound replica read staleness.
//
// SIGTERM/SIGINT drain gracefully at any phase: during the demo build
// the ingest loop stops at the next batch boundary; while serving,
// readiness flips to 503 first so load balancers move traffic away,
// in-flight requests finish, then replication stops and a final
// checkpoint is written.
//
// then open http://127.0.0.1:<port>/ — or hit the JSON API:
//   curl 'http://127.0.0.1:8080/api/query?q=tell+me+about+DJI'
//   curl 'http://127.0.0.1:8080/api/stats'
//   curl 'http://127.0.0.1:8080/api/trace?limit=200'   # Perfetto JSON
//   curl 'http://127.0.0.1:8080/api/healthz'
//   curl -X POST --data 'DJI acquired SkyWard Labs.'
//        'http://127.0.0.1:8080/api/ingest?source=curl&year=2016'
//   (join the two curl lines into one command)

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "replication/follower.h"
#include "replication/leader.h"
#include "server/api.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool ParseFsyncPolicy(const std::string& mode, nous::FsyncPolicy* policy) {
  if (mode == "always") *policy = nous::FsyncPolicy::kAlways;
  else if (mode == "interval") *policy = nous::FsyncPolicy::kInterval;
  else if (mode == "never") *policy = nous::FsyncPolicy::kNever;
  else return false;
  return true;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace nous;
  size_t num_threads = 0;  // 0 = hardware_concurrency
  std::string wal_dir;
  size_t checkpoint_interval = 8;
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  QueryCacheOptions query_cache;
  int replicate_to_port = 0;
  std::string follow_target;  // "host:port"
  uint64_t max_staleness_versions = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      num_threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = static_cast<size_t>(std::atoi(arg.c_str() + 10));
    } else if (arg == "--wal-dir" && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (arg.rfind("--wal-dir=", 0) == 0) {
      wal_dir = arg.substr(10);
    } else if (arg == "--checkpoint-interval" && i + 1 < argc) {
      checkpoint_interval = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      checkpoint_interval =
          static_cast<size_t>(std::atoi(arg.c_str() + 22));
    } else if (arg == "--fsync" && i + 1 < argc) {
      if (!ParseFsyncPolicy(argv[++i], &fsync_policy)) {
        std::cerr << "--fsync expects always|interval|never\n";
        return 1;
      }
    } else if (arg.rfind("--fsync=", 0) == 0) {
      if (!ParseFsyncPolicy(arg.substr(8), &fsync_policy)) {
        std::cerr << "--fsync expects always|interval|never\n";
        return 1;
      }
    } else if (arg == "--query-cache-entries" && i + 1 < argc) {
      query_cache.entries = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg.rfind("--query-cache-entries=", 0) == 0) {
      query_cache.entries =
          static_cast<size_t>(std::atoi(arg.c_str() + 22));
    } else if (arg == "--no-query-cache") {
      query_cache.enabled = false;
    } else if (arg == "--slow-query-ms" && i + 1 < argc) {
      SetSlowTraceThresholdMs(std::atof(argv[++i]));
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      SetSlowTraceThresholdMs(std::atof(arg.c_str() + 16));
    } else if (arg == "--replicate-to" && i + 1 < argc) {
      replicate_to_port = std::atoi(argv[++i]);
    } else if (arg.rfind("--replicate-to=", 0) == 0) {
      replicate_to_port = std::atoi(arg.c_str() + 15);
    } else if (arg == "--follow" && i + 1 < argc) {
      follow_target = argv[++i];
    } else if (arg.rfind("--follow=", 0) == 0) {
      follow_target = arg.substr(9);
    } else if (arg == "--max-staleness-versions" && i + 1 < argc) {
      max_staleness_versions =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (arg.rfind("--max-staleness-versions=", 0) == 0) {
      max_staleness_versions =
          static_cast<uint64_t>(std::atoll(arg.c_str() + 25));
    } else {
      positional.push_back(arg);
    }
  }
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  uint16_t port =
      !positional.empty()
          ? static_cast<uint16_t>(std::atoi(positional[0].c_str()))
          : 8080;
  size_t num_events =
      positional.size() > 1
          ? static_cast<size_t>(std::atoi(positional[1].c_str()))
          : 400;

  const bool is_follower = !follow_target.empty();
  const bool is_leader = replicate_to_port > 0;
  if (is_leader && is_follower) {
    std::cerr << "--replicate-to and --follow are mutually exclusive\n";
    return 1;
  }
  if ((is_leader || is_follower) && wal_dir.empty()) {
    std::cerr << "replication streams the durability WAL: --replicate-to"
                 " and --follow both require --wal-dir\n";
    return 1;
  }
  std::string follow_host;
  int follow_port = 0;
  if (is_follower) {
    const size_t colon = follow_target.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == follow_target.size()) {
      std::cerr << "--follow expects HOST:PORT\n";
      return 1;
    }
    follow_host = follow_target.substr(0, colon);
    follow_port = std::atoi(follow_target.c_str() + colon + 1);
    if (follow_port <= 0 || follow_port > 65535) {
      std::cerr << "--follow expects HOST:PORT\n";
      return 1;
    }
  }

  DroneWorldConfig world_config;
  world_config.num_events = num_events;
  WorldModel world = WorldModel::BuildDroneWorld(world_config);
  KbCoverage coverage;
  coverage.entity_coverage = 0.6;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  DocumentStream stream(
      ArticleGenerator(&world, CorpusConfig{}).GenerateArticles());

  Nous::Options options;
  options.pipeline.miner.use_vertex_types = true;
  options.pipeline.miner.min_support = 4;
  options.pipeline.num_threads = num_threads;
  options.durability.dir = wal_dir;
  options.durability.checkpoint_interval_batches = checkpoint_interval;
  options.durability.fsync_policy = fsync_policy;
  options.query_cache = query_cache;
  Nous nous(&kb, options);

  // Handlers go in before the (potentially long) KG build so an early
  // SIGTERM drains instead of killing a half-built durable state.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  bool build_demo_kg = true;
  if (!wal_dir.empty()) {
    auto recovered = nous.Recover();
    if (!recovered.ok()) {
      std::cerr << "recovery failed: " << recovered.status() << "\n";
      return 1;
    }
    if (recovered->restored_checkpoint ||
        recovered->replayed_batches > 0) {
      std::cout << "Recovered KG from " << wal_dir << " (checkpoint: "
                << (recovered->restored_checkpoint ? "yes" : "no")
                << ", replayed batches: " << recovered->replayed_batches
                << ", dropped torn records: "
                << recovered->dropped_wal_records << ")\n";
      nous.Finalize();
      build_demo_kg = false;
    }
  }
  if (is_follower) {
    // A follower's KG is derived from the leader's stream; building
    // the demo corpus locally would fork it before the first frame.
    build_demo_kg = false;
  }
  if (build_demo_kg) {
    std::cout << "Building demo KG from " << stream.TotalCount()
              << " articles (" << num_threads << " threads"
              << (wal_dir.empty() ? "" : ", durable") << ")...\n";
    // Batch-at-a-time (the WAL commit unit) so SIGTERM mid-build stops
    // at a clean batch boundary instead of discarding the run.
    constexpr size_t kBatch = 64;
    std::vector<Article> batch;
    batch.reserve(kBatch);
    while (!stream.Done() && !g_stop) {
      batch.push_back(stream.Next());
      if (batch.size() == kBatch) {
        Status ingest_status = nous.IngestBatch(batch);
        if (!ingest_status.ok()) {
          std::cerr << "ingest failed: " << ingest_status << "\n";
          return 1;
        }
        batch.clear();
      }
    }
    if (!g_stop && !batch.empty()) {
      Status ingest_status = nous.IngestBatch(batch);
      if (!ingest_status.ok()) {
        std::cerr << "ingest failed: " << ingest_status << "\n";
        return 1;
      }
    }
    nous.Finalize();
  }
  std::cout << nous.ComputeStats().ToString();

  ResourceSampler sampler;
  nous.RegisterResourceProbes(&sampler);
  sampler.Start();

  std::unique_ptr<ReplicationLeader> leader;
  std::unique_ptr<ReplicationFollower> follower;
  if (is_leader) {
    ReplicationLeader::Options leader_options;
    leader_options.port = static_cast<uint16_t>(replicate_to_port);
    leader = std::make_unique<ReplicationLeader>(&nous, leader_options);
    Status started = leader->Start();
    if (!started.ok()) {
      std::cerr << "replication leader failed to start: " << started
                << "\n";
      return 1;
    }
    std::cout << "Replicating to followers on 127.0.0.1:"
              << leader->port() << "\n";
  } else if (is_follower) {
    ReplicationFollower::Options follower_options;
    follower_options.host = follow_host;
    follower_options.port = static_cast<uint16_t>(follow_port);
    follower =
        std::make_unique<ReplicationFollower>(&nous, follower_options);
    Status started = follower->Start();
    if (!started.ok()) {
      std::cerr << "replication follower failed to start: " << started
                << "\n";
      return 1;
    }
    std::cout << "Following leader at " << follow_host << ":"
              << follow_port << " (read-only replica)\n";
  }

  NousApi api(&nous);
  if (leader != nullptr) {
    api.ConfigureReplication(leader.get(), /*max_staleness_versions=*/0,
                             /*read_only=*/false);
  } else if (follower != nullptr) {
    api.ConfigureReplication(follower.get(), max_staleness_versions,
                             /*read_only=*/true);
  }
  HttpServerOptions server_options;
  server_options.num_threads = num_threads;
  HttpServer server(
      [&api](const HttpRequest& request) { return api.Handle(request); },
      server_options);
  Status status = server.Start(port);
  if (!status.ok()) {
    std::cerr << "failed to start: " << status << "\n";
    return 1;
  }
  std::cout << "Serving http://127.0.0.1:" << server.port()
            << "/  (Ctrl-C to stop)\n";
  while (!g_stop) {
    ::usleep(200000);
  }
  // Graceful drain: fail readiness first so a load balancer stops
  // sending traffic, then stop (which finishes in-flight requests),
  // then detach from the replication fleet.
  api.SetReady(false);
  server.Stop();
  if (follower != nullptr) follower->Stop();
  if (leader != nullptr) leader->Stop();
  sampler.Stop();
  if (nous.durable()) {
    Status ckpt = nous.Checkpoint();
    if (!ckpt.ok()) std::cerr << "final checkpoint: " << ckpt << "\n";
  }
  std::cout << "stopped\n\n";
  MetricsRegistry::Global().PrintSummary(std::cout);
  return 0;
}
