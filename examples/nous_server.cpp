// Web demo (the paper's Figure 6): builds a drone-domain KG from a
// synthetic stream and serves the query interface over HTTP.
//
//   nous_server [port] [num_events] [--threads N] [--shards N]
//               [--wal-dir DIR]
//               [--checkpoint-interval N] [--fsync MODE]
//               [--query-cache-entries N] [--no-query-cache]
//               [--slow-query-ms MS] [--replicate-to PORT]
//               [--follow HOST:PORT] [--max-staleness-versions N]
//
// --threads N sets both the pipeline's extraction/BPR worker pool and
// the number of concurrent HTTP connection handlers (default: the
// machine's hardware concurrency). The built KG is identical for
// every value.
//
// --query-cache-entries N bounds the versioned answer cache (LRU, N
// entries, default 1024); --no-query-cache disables it. Either way,
// queries serve from immutable KG snapshots and never block ingest
// (DESIGN.md §5.11).
//
// --wal-dir DIR makes ingest crash-safe (DESIGN.md §5.10): the server
// recovers whatever a previous run left in DIR (checkpoint + WAL
// replay, skipping the demo build), then logs every new ingest before
// applying it. --checkpoint-interval N checkpoints every N logged
// batches (default 8; 0 = only on shutdown); --fsync always|interval|
// never picks the WAL flush policy.
//
// --slow-query-ms MS logs a Warning with trace id + per-stage
// breakdown for every request slower than MS milliseconds (also
// settable via the NOUS_SLOW_QUERY_MS environment variable; the flag
// wins). A background ResourceSampler exports RSS, snapshot clone
// bytes, cache hit ratio, and queue depth through /api/metrics.
//
// Replication (DESIGN.md §5.15; both modes require --wal-dir):
//   --replicate-to PORT   serve the durability WAL to followers on
//                         127.0.0.1:PORT (this process is the leader)
//   --follow HOST:PORT    become a read-only follower of the leader at
//                         HOST:PORT: skip the demo build, replay the
//                         leader's stream, reject POST /api/ingest
//                         with 403
//   --max-staleness-versions N   follower readiness gate: /api/readyz
//                         turns 503 while this replica lags the leader
//                         by more than N KG versions
// Every HTTP response carries X-Nous-Kg-Version, the KG version the
// process served, so clients can bound replica read staleness.
//
// SIGTERM/SIGINT drain gracefully at any phase: during the demo build
// the ingest loop stops at the next batch boundary; while serving,
// readiness flips to 503 first so load balancers move traffic away,
// in-flight requests finish, then replication stops and a final
// checkpoint is written.
//
// then open http://127.0.0.1:<port>/ — or hit the JSON API:
//   curl 'http://127.0.0.1:8080/api/query?q=tell+me+about+DJI'
//   curl 'http://127.0.0.1:8080/api/stats'
//   curl 'http://127.0.0.1:8080/api/trace?limit=200'   # Perfetto JSON
//   curl 'http://127.0.0.1:8080/api/healthz'
//   curl -X POST --data 'DJI acquired SkyWard Labs.'
//        'http://127.0.0.1:8080/api/ingest?source=curl&year=2016'
//   (join the two curl lines into one command)

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "obs/metrics.h"
#include "obs/resource_sampler.h"
#include "obs/trace.h"
#include "replication/follower.h"
#include "replication/leader.h"
#include "server/api.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }

bool ParseFsyncPolicy(const std::string& mode, nous::FsyncPolicy* policy) {
  if (mode == "always") *policy = nous::FsyncPolicy::kAlways;
  else if (mode == "interval") *policy = nous::FsyncPolicy::kInterval;
  else if (mode == "never") *policy = nous::FsyncPolicy::kNever;
  else return false;
  return true;
}

/// Checked flag values: `--threads=abc` is a usage error, not a
/// silent fallback (std::atoi returned 0, which meant "hardware
/// concurrency" here and "replication disabled" for --replicate-to).
size_t RequireSize(const char* flag, std::string_view value, size_t min,
                   size_t max) {
  size_t parsed = 0;
  if (!nous::ParseSize(value, &parsed, min, max)) {
    std::cerr << flag << " expects an integer in [" << min << ", " << max
              << "], got '" << value << "'\n";
    std::exit(1);
  }
  return parsed;
}

uint16_t RequirePort(const char* flag, std::string_view value) {
  uint16_t port = 0;
  if (!nous::ParsePort(value, &port)) {
    std::cerr << flag << " expects a port in [1, 65535], got '" << value
              << "'\n";
    std::exit(1);
  }
  return port;
}

double RequireDouble(const char* flag, std::string_view value) {
  double parsed = 0;
  if (!nous::ParseDouble(value, &parsed)) {
    std::cerr << flag << " expects a number, got '" << value << "'\n";
    std::exit(1);
  }
  return parsed;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace nous;
  size_t num_threads = 0;  // 0 = hardware_concurrency
  size_t num_shards = 1;
  std::string wal_dir;
  size_t checkpoint_interval = 8;
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  QueryCacheOptions query_cache;
  int replicate_to_port = 0;
  std::string follow_target;  // "host:port"
  uint64_t max_staleness_versions = 0;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      num_threads = RequireSize("--threads", argv[++i], 1, 1024);
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = RequireSize("--threads", arg.substr(10), 1, 1024);
    } else if (arg == "--shards" && i + 1 < argc) {
      num_shards = RequireSize("--shards", argv[++i], 1, kMaxShards);
    } else if (arg.rfind("--shards=", 0) == 0) {
      num_shards = RequireSize("--shards", arg.substr(9), 1, kMaxShards);
    } else if (arg == "--wal-dir" && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (arg.rfind("--wal-dir=", 0) == 0) {
      wal_dir = arg.substr(10);
    } else if (arg == "--checkpoint-interval" && i + 1 < argc) {
      checkpoint_interval =
          RequireSize("--checkpoint-interval", argv[++i], 0, SIZE_MAX);
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      checkpoint_interval =
          RequireSize("--checkpoint-interval", arg.substr(22), 0, SIZE_MAX);
    } else if (arg == "--fsync" && i + 1 < argc) {
      if (!ParseFsyncPolicy(argv[++i], &fsync_policy)) {
        std::cerr << "--fsync expects always|interval|never\n";
        return 1;
      }
    } else if (arg.rfind("--fsync=", 0) == 0) {
      if (!ParseFsyncPolicy(arg.substr(8), &fsync_policy)) {
        std::cerr << "--fsync expects always|interval|never\n";
        return 1;
      }
    } else if (arg == "--query-cache-entries" && i + 1 < argc) {
      query_cache.entries =
          RequireSize("--query-cache-entries", argv[++i], 1, SIZE_MAX);
    } else if (arg.rfind("--query-cache-entries=", 0) == 0) {
      query_cache.entries =
          RequireSize("--query-cache-entries", arg.substr(22), 1, SIZE_MAX);
    } else if (arg == "--no-query-cache") {
      query_cache.enabled = false;
    } else if (arg == "--slow-query-ms" && i + 1 < argc) {
      SetSlowTraceThresholdMs(RequireDouble("--slow-query-ms", argv[++i]));
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      SetSlowTraceThresholdMs(
          RequireDouble("--slow-query-ms", arg.substr(16)));
    } else if (arg == "--replicate-to" && i + 1 < argc) {
      replicate_to_port = RequirePort("--replicate-to", argv[++i]);
    } else if (arg.rfind("--replicate-to=", 0) == 0) {
      replicate_to_port = RequirePort("--replicate-to", arg.substr(15));
    } else if (arg == "--follow" && i + 1 < argc) {
      follow_target = argv[++i];
    } else if (arg.rfind("--follow=", 0) == 0) {
      follow_target = arg.substr(9);
    } else if (arg == "--max-staleness-versions" && i + 1 < argc) {
      uint64_t parsed = 0;
      if (!ParseUint64(argv[++i], &parsed)) {
        std::cerr << "--max-staleness-versions expects a non-negative "
                     "integer, got '"
                  << argv[i] << "'\n";
        return 1;
      }
      max_staleness_versions = parsed;
    } else if (arg.rfind("--max-staleness-versions=", 0) == 0) {
      uint64_t parsed = 0;
      if (!ParseUint64(arg.substr(25), &parsed)) {
        std::cerr << "--max-staleness-versions expects a non-negative "
                     "integer, got '"
                  << arg.substr(25) << "'\n";
        return 1;
      }
      max_staleness_versions = parsed;
    } else {
      positional.push_back(arg);
    }
  }
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  // Port 70000 is now an error instead of wrapping to 4464 through
  // static_cast<uint16_t>(std::atoi(...)).
  uint16_t port = 8080;
  if (!positional.empty()) port = RequirePort("port", positional[0]);
  size_t num_events = 400;
  if (positional.size() > 1) {
    num_events = RequireSize("num_events", positional[1], 1, 10000000);
  }

  const bool is_follower = !follow_target.empty();
  const bool is_leader = replicate_to_port > 0;
  if (is_leader && is_follower) {
    std::cerr << "--replicate-to and --follow are mutually exclusive\n";
    return 1;
  }
  if ((is_leader || is_follower) && wal_dir.empty()) {
    std::cerr << "replication streams the durability WAL: --replicate-to"
                 " and --follow both require --wal-dir\n";
    return 1;
  }
  std::string follow_host;
  uint16_t follow_port = 0;
  if (is_follower) {
    const size_t colon = follow_target.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == follow_target.size() ||
        !ParsePort(follow_target.substr(colon + 1), &follow_port)) {
      std::cerr << "--follow expects HOST:PORT\n";
      return 1;
    }
    follow_host = follow_target.substr(0, colon);
  }

  DroneWorldConfig world_config;
  world_config.num_events = num_events;
  WorldModel world = WorldModel::BuildDroneWorld(world_config);
  KbCoverage coverage;
  coverage.entity_coverage = 0.6;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  DocumentStream stream(
      ArticleGenerator(&world, CorpusConfig{}).GenerateArticles());

  Nous::Options options;
  options.pipeline.miner.use_vertex_types = true;
  options.pipeline.miner.min_support = 4;
  options.pipeline.num_threads = num_threads;
  options.shards = num_shards;
  options.durability.dir = wal_dir;
  options.durability.checkpoint_interval_batches = checkpoint_interval;
  options.durability.fsync_policy = fsync_policy;
  options.query_cache = query_cache;
  Nous nous(&kb, options);

  // Handlers go in before the (potentially long) KG build so an early
  // SIGTERM drains instead of killing a half-built durable state.
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  bool build_demo_kg = true;
  if (!wal_dir.empty()) {
    auto recovered = nous.Recover();
    if (!recovered.ok()) {
      std::cerr << "recovery failed: " << recovered.status() << "\n";
      return 1;
    }
    if (recovered->restored_checkpoint ||
        recovered->replayed_batches > 0) {
      std::cout << "Recovered KG from " << wal_dir << " (checkpoint: "
                << (recovered->restored_checkpoint ? "yes" : "no")
                << ", replayed batches: " << recovered->replayed_batches
                << ", dropped torn records: "
                << recovered->dropped_wal_records << ")\n";
      nous.Finalize();
      build_demo_kg = false;
    }
  }
  if (is_follower) {
    // A follower's KG is derived from the leader's stream; building
    // the demo corpus locally would fork it before the first frame.
    build_demo_kg = false;
  }
  if (build_demo_kg) {
    std::cout << "Building demo KG from " << stream.TotalCount()
              << " articles (" << num_threads << " threads"
              << (wal_dir.empty() ? "" : ", durable") << ")...\n";
    // Batch-at-a-time (the WAL commit unit) so SIGTERM mid-build stops
    // at a clean batch boundary instead of discarding the run.
    constexpr size_t kBatch = 64;
    std::vector<Article> batch;
    batch.reserve(kBatch);
    while (!stream.Done() && !g_stop) {
      batch.push_back(stream.Next());
      if (batch.size() == kBatch) {
        Status ingest_status = nous.IngestBatch(batch);
        if (!ingest_status.ok()) {
          std::cerr << "ingest failed: " << ingest_status << "\n";
          return 1;
        }
        batch.clear();
      }
    }
    if (!g_stop && !batch.empty()) {
      Status ingest_status = nous.IngestBatch(batch);
      if (!ingest_status.ok()) {
        std::cerr << "ingest failed: " << ingest_status << "\n";
        return 1;
      }
    }
    nous.Finalize();
  }
  std::cout << nous.ComputeStats().ToString();

  ResourceSampler sampler;
  nous.RegisterResourceProbes(&sampler);
  sampler.Start();

  std::unique_ptr<ReplicationLeader> leader;
  std::unique_ptr<ReplicationFollower> follower;
  if (is_leader) {
    ReplicationLeader::Options leader_options;
    leader_options.port = static_cast<uint16_t>(replicate_to_port);
    leader = std::make_unique<ReplicationLeader>(&nous, leader_options);
    Status started = leader->Start();
    if (!started.ok()) {
      std::cerr << "replication leader failed to start: " << started
                << "\n";
      return 1;
    }
    std::cout << "Replicating to followers on 127.0.0.1:"
              << leader->port() << "\n";
  } else if (is_follower) {
    ReplicationFollower::Options follower_options;
    follower_options.host = follow_host;
    follower_options.port = static_cast<uint16_t>(follow_port);
    follower =
        std::make_unique<ReplicationFollower>(&nous, follower_options);
    Status started = follower->Start();
    if (!started.ok()) {
      std::cerr << "replication follower failed to start: " << started
                << "\n";
      return 1;
    }
    std::cout << "Following leader at " << follow_host << ":"
              << follow_port << " (read-only replica)\n";
  }

  NousApi api(&nous);
  if (leader != nullptr) {
    api.ConfigureReplication(leader.get(), /*max_staleness_versions=*/0,
                             /*read_only=*/false);
  } else if (follower != nullptr) {
    api.ConfigureReplication(follower.get(), max_staleness_versions,
                             /*read_only=*/true);
  }
  HttpServerOptions server_options;
  server_options.num_threads = num_threads;
  HttpServer server(
      [&api](const HttpRequest& request) { return api.Handle(request); },
      server_options);
  Status status = server.Start(port);
  if (!status.ok()) {
    std::cerr << "failed to start: " << status << "\n";
    return 1;
  }
  std::cout << "Serving http://127.0.0.1:" << server.port()
            << "/  (Ctrl-C to stop)\n";
  while (!g_stop) {
    ::usleep(200000);
  }
  // Graceful drain: fail readiness first so a load balancer stops
  // sending traffic, then stop (which finishes in-flight requests),
  // then detach from the replication fleet.
  api.SetReady(false);
  server.Stop();
  if (follower != nullptr) follower->Stop();
  if (leader != nullptr) leader->Stop();
  sampler.Stop();
  if (nous.durable()) {
    Status ckpt = nous.Checkpoint();
    if (!ckpt.ok()) std::cerr << "final checkpoint: " << ckpt << "\n";
  }
  std::cout << "stopped\n\n";
  MetricsRegistry::Global().PrintSummary(std::cout);
  return 0;
}
