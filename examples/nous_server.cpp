// Web demo (the paper's Figure 6): builds a drone-domain KG from a
// synthetic stream and serves the query interface over HTTP.
//
//   nous_server [port] [num_events] [--threads N]
//
// --threads N sets both the pipeline's extraction/BPR worker pool and
// the number of concurrent HTTP connection handlers (default: the
// machine's hardware concurrency). The built KG is identical for
// every value.
//
// then open http://127.0.0.1:<port>/ — or hit the JSON API:
//   curl 'http://127.0.0.1:8080/api/query?q=tell+me+about+DJI'
//   curl 'http://127.0.0.1:8080/api/stats'
//   curl -X POST --data 'DJI acquired SkyWard Labs.'
//        'http://127.0.0.1:8080/api/ingest?source=curl&year=2016'
//   (join the two curl lines into one command)

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "obs/metrics.h"
#include "server/api.h"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void HandleSignal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace nous;
  size_t num_threads = 0;  // 0 = hardware_concurrency
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      num_threads = static_cast<size_t>(std::atoi(argv[++i]));
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = static_cast<size_t>(std::atoi(arg.c_str() + 10));
    } else {
      positional.push_back(arg);
    }
  }
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  uint16_t port =
      !positional.empty()
          ? static_cast<uint16_t>(std::atoi(positional[0].c_str()))
          : 8080;
  size_t num_events =
      positional.size() > 1
          ? static_cast<size_t>(std::atoi(positional[1].c_str()))
          : 400;

  DroneWorldConfig world_config;
  world_config.num_events = num_events;
  WorldModel world = WorldModel::BuildDroneWorld(world_config);
  KbCoverage coverage;
  coverage.entity_coverage = 0.6;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  DocumentStream stream(
      ArticleGenerator(&world, CorpusConfig{}).GenerateArticles());

  Nous::Options options;
  options.pipeline.miner.use_vertex_types = true;
  options.pipeline.miner.min_support = 4;
  options.pipeline.num_threads = num_threads;
  Nous nous(&kb, options);
  std::cout << "Building demo KG from " << stream.TotalCount()
            << " articles (" << num_threads << " threads)...\n";
  nous.IngestStream(&stream);
  std::cout << nous.ComputeStats().ToString();

  NousApi api(&nous);
  HttpServer server(
      [&api](const HttpRequest& request) { return api.Handle(request); },
      num_threads);
  Status status = server.Start(port);
  if (!status.ok()) {
    std::cerr << "failed to start: " << status << "\n";
    return 1;
  }
  std::cout << "Serving http://127.0.0.1:" << server.port()
            << "/  (Ctrl-C to stop)\n";
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_stop) {
    ::usleep(200000);
  }
  server.Stop();
  std::cout << "stopped\n\n";
  MetricsRegistry::Global().PrintSummary(std::cout);
  return 0;
}
