// Citation analytics (§3.1 domain 3): authorship, venues, and citation
// events stream into a bibliographic knowledge graph; path queries
// explain how two researchers are connected.

#include <iostream>

#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

int main() {
  using namespace nous;

  WorldModel world = WorldModel::BuildCitationWorld(
      /*num_authors=*/20, /*num_papers=*/60, /*seed=*/21);
  KbCoverage coverage;
  coverage.entity_coverage = 0.5;  // venues + famous authors curated
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);

  CorpusConfig corpus_config;
  corpus_config.pronoun_rate = 0.1;
  corpus_config.sources = {"dblp_feed", "arxiv_feed"};
  DocumentStream stream(
      ArticleGenerator(&world, corpus_config).GenerateArticles());

  Nous nous(&kb);
  std::cout << "=== NOUS citation analytics ===\n";
  std::cout << "Ingesting " << stream.TotalCount()
            << " bibliography updates...\n";
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  std::cout << nous.ComputeStats().ToString() << "\n";

  // Entity query on a venue.
  std::cout << "Q: tell me about VLDB\n";
  if (auto a = nous.Ask("tell me about VLDB"); a.ok()) {
    std::cout << a->Render(nous.graph()) << "\n";
  }

  // Connect two authors through papers/venues/citations.
  const PropertyGraph& g = nous.graph();
  std::string author_a, author_b;
  for (const WorldEntity& e : world.entities()) {
    if (e.type_name != "person") continue;
    if (!g.FindVertex(e.name).has_value()) continue;
    if (author_a.empty()) {
      author_a = e.name;
    } else {
      author_b = e.name;
      break;
    }
  }
  if (!author_a.empty() && !author_b.empty()) {
    std::string q = "paths from " + author_a + " to " + author_b;
    std::cout << "Q: " << q << "\n";
    if (auto a = nous.Ask(q); a.ok() && !a->paths.empty()) {
      std::cout << a->Render(nous.graph()) << "\n";
    } else {
      std::cout << "  (no path within hop limit)\n\n";
    }
  }

  std::cout << "Q: what is trending\n";
  if (auto a = nous.Ask("what is trending"); a.ok()) {
    std::cout << a->Render(nous.graph()) << "\n";
  }
  return 0;
}
