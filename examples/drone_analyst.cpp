// The paper's §1.2 use case: a finance / security analyst tracking the
// emerging civilian-drone industry. NOUS ingests a news stream, fuses
// it with curated knowledge, and answers the two question styles the
// paper motivates: trend discovery and explanatory ("why") questions —
// e.g. "why would Windermere, a real-estate firm, employ drones?".

#include <iostream>
#include <string>

#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

int main() {
  using namespace nous;

  DroneWorldConfig world_config;
  world_config.num_companies = 30;
  world_config.num_people = 20;
  world_config.num_products = 15;
  world_config.num_events = 400;
  WorldModel world = WorldModel::BuildDroneWorld(world_config);

  KbCoverage coverage;
  coverage.entity_coverage = 0.55;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);

  CorpusConfig corpus_config;
  corpus_config.pronoun_rate = 0.25;
  corpus_config.alias_rate = 0.3;
  DocumentStream stream(
      ArticleGenerator(&world, corpus_config).GenerateArticles());

  Nous::Options options;
  options.pipeline.miner.use_vertex_types = true;  // typed patterns
  options.pipeline.miner.min_support = 4;
  Nous nous(&kb, options);

  std::cout << "=== NOUS drone-industry analyst ===\n";
  std::cout << "Ingesting " << stream.TotalCount()
            << " articles (2010-2015)...\n";
  NOUS_CHECK_OK(nous.IngestStream(&stream));
  std::cout << nous.ComputeStats().ToString() << "\n";

  // --- The analyst session. ---
  std::cout << "Q: tell me about DJI\n";
  if (auto a = nous.Ask("tell me about DJI"); a.ok()) {
    std::cout << a->Render(nous.graph()) << "\n";
  }

  // Explanatory question: connect Windermere (real estate) to drone
  // technology across curated + extracted facts.
  const PropertyGraph& g = nous.graph();
  auto windermere = g.FindVertex("Windermere");
  std::string drone_entity = "Phantom 3";
  if (windermere.has_value()) {
    // Prefer a product Windermere actually touches, if one exists.
    for (const AdjEntry& adj : g.OutEdges(*windermere)) {
      TypeId t = g.VertexType(adj.neighbor);
      if (t != kInvalidType &&
          g.types().GetString(t) == "drone_model") {
        drone_entity = g.VertexLabel(adj.neighbor);
        break;
      }
    }
  }
  std::string why = "explain Windermere and " + drone_entity;
  std::cout << "Q: " << why << "\n";
  if (auto a = nous.Ask(why); a.ok()) {
    std::cout << a->Render(nous.graph());
    std::cout << "  (evidence spans " << a->distinct_sources
              << " distinct sources)\n\n";
  } else {
    std::cout << "  no explanation found\n\n";
  }

  std::cout << "Q: what is trending\n";
  if (auto a = nous.Ask("what is trending"); a.ok()) {
    std::cout << a->Render(nous.graph()) << "\n";
  }

  std::cout << "Q: show patterns\n";
  if (auto a = nous.Ask("show patterns"); a.ok()) {
    std::cout << a->Render(nous.graph()) << "\n";
  }
  return 0;
}
