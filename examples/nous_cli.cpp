// Interactive command-line interface (the paper's demo feature 4:
// "execute queries for pattern discovery and graph search using both
// web and command line interface").
//
// Usage:
//   nous_cli [num_events] [--threads N] [--shards N] [--wal-dir DIR]
//            [--checkpoint-interval N] [--fsync MODE]
//
// --threads N sizes the pipeline's extraction/BPR worker pool
// (default: hardware concurrency). The built KG is identical for
// every value.
//
// --shards N hash-partitions the KG into N shards, each with its own
// commit lane, WAL segment, and snapshot store (DESIGN.md §5.16); the
// fused KG stays bit-identical for every shard count.
//
// --wal-dir DIR makes :ingest crash-safe (DESIGN.md §5.10): a
// previous run's checkpoint + WAL are recovered (skipping the demo
// build) and every new ingest is logged before it is applied.
// --fsync always|interval|never picks the WAL flush policy;
// --checkpoint-interval N checkpoints every N logged batches
// (default 8; 0 = only via :checkpoint).
//
// Commands (one per line on stdin):
//   tell me about <entity>            entity summary (Figure 6)
//   what is trending                  trending entities + patterns
//   show patterns                     closed frequent patterns
//   explain <A> and <B> [via <P>]     why-question / coherent paths
//   paths from <A> to <B>             graph search
//   :ingest <text...>                 feed a sentence into the pipeline
//   :checkpoint                       persist state now (durable mode)
//   :save <path> | :load <path>       serialize / restore the fused KG
//   :stats                            pipeline + graph statistics
//   :help | :quit

#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "graph/graph_io.h"
#include "kb/kb_generator.h"

namespace {

void PrintHelp() {
  std::cout <<
      "Commands:\n"
      "  tell me about <entity>\n"
      "  what is trending\n"
      "  show patterns\n"
      "  explain <A> and <B> [via <P>]\n"
      "  paths from <A> to <B>\n"
      "  :ingest <sentence>   feed text into the pipeline\n"
      "  :checkpoint          persist durable state now\n"
      "  :save <path>         write the fused KG to a file\n"
      "  :stats               pipeline + graph statistics\n"
      "  :help  :quit\n";
}

bool ParseFsyncPolicy(const std::string& mode, nous::FsyncPolicy* policy) {
  if (mode == "always") *policy = nous::FsyncPolicy::kAlways;
  else if (mode == "interval") *policy = nous::FsyncPolicy::kInterval;
  else if (mode == "never") *policy = nous::FsyncPolicy::kNever;
  else return false;
  return true;
}

/// Checked flag values: `--threads=abc` is a usage error, not a
/// silent fallback to hardware concurrency (std::atoi returned 0).
size_t RequireSize(const char* flag, std::string_view value, size_t min,
                   size_t max) {
  size_t parsed = 0;
  if (!nous::ParseSize(value, &parsed, min, max)) {
    std::cerr << flag << " expects an integer in [" << min << ", " << max
              << "], got '" << value << "'\n";
    std::exit(1);
  }
  return parsed;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nous;
  size_t num_threads = 0;  // 0 = hardware_concurrency
  size_t num_shards = 1;
  std::string wal_dir;
  size_t checkpoint_interval = 8;
  FsyncPolicy fsync_policy = FsyncPolicy::kInterval;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      num_threads = RequireSize("--threads", argv[++i], 1, 1024);
    } else if (arg.rfind("--threads=", 0) == 0) {
      num_threads = RequireSize("--threads", arg.substr(10), 1, 1024);
    } else if (arg == "--shards" && i + 1 < argc) {
      num_shards = RequireSize("--shards", argv[++i], 1, kMaxShards);
    } else if (arg.rfind("--shards=", 0) == 0) {
      num_shards = RequireSize("--shards", arg.substr(9), 1, kMaxShards);
    } else if (arg == "--wal-dir" && i + 1 < argc) {
      wal_dir = argv[++i];
    } else if (arg.rfind("--wal-dir=", 0) == 0) {
      wal_dir = arg.substr(10);
    } else if (arg == "--checkpoint-interval" && i + 1 < argc) {
      checkpoint_interval =
          RequireSize("--checkpoint-interval", argv[++i], 0, SIZE_MAX);
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      checkpoint_interval =
          RequireSize("--checkpoint-interval", arg.substr(22), 0, SIZE_MAX);
    } else if (arg == "--fsync" && i + 1 < argc) {
      if (!ParseFsyncPolicy(argv[++i], &fsync_policy)) {
        std::cerr << "--fsync expects always|interval|never\n";
        return 1;
      }
    } else if (arg.rfind("--fsync=", 0) == 0) {
      if (!ParseFsyncPolicy(arg.substr(8), &fsync_policy)) {
        std::cerr << "--fsync expects always|interval|never\n";
        return 1;
      }
    } else {
      positional.push_back(arg);
    }
  }
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  size_t num_events = 300;
  if (!positional.empty()) {
    num_events = RequireSize("num_events", positional[0], 1, 10000000);
  }

  DroneWorldConfig world_config;
  world_config.num_events = num_events;
  WorldModel world = WorldModel::BuildDroneWorld(world_config);
  KbCoverage coverage;
  coverage.entity_coverage = 0.6;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);
  DocumentStream stream(
      ArticleGenerator(&world, CorpusConfig{}).GenerateArticles());

  Nous::Options options;
  options.pipeline.miner.use_vertex_types = true;
  options.pipeline.miner.min_support = 4;
  options.pipeline.num_threads = num_threads;
  options.shards = num_shards;
  options.durability.dir = wal_dir;
  options.durability.checkpoint_interval_batches = checkpoint_interval;
  options.durability.fsync_policy = fsync_policy;
  Nous nous(&kb, options);

  bool build_demo_kg = true;
  if (!wal_dir.empty()) {
    auto recovered = nous.Recover();
    if (!recovered.ok()) {
      std::cerr << "recovery failed: " << recovered.status() << "\n";
      return 1;
    }
    if (recovered->restored_checkpoint ||
        recovered->replayed_batches > 0) {
      std::cout << "Recovered KG from " << wal_dir
                << " (replayed batches: " << recovered->replayed_batches
                << ", dropped torn records: "
                << recovered->dropped_wal_records << ")\n";
      build_demo_kg = false;
    }
  }
  if (build_demo_kg) {
    std::cout << "Building demo KG from " << stream.TotalCount()
              << " articles (" << num_threads << " threads"
              << (wal_dir.empty() ? "" : ", durable") << ")...\n";
    Status ingest_status = nous.IngestStream(&stream);
    if (!ingest_status.ok()) {
      std::cerr << "ingest failed: " << ingest_status << "\n";
      return 1;
    }
  } else {
    nous.Finalize();
  }
  std::cout << nous.ComputeStats().ToString();
  PrintHelp();

  std::string line;
  size_t adhoc = 0;
  while (std::cout << "nous> " << std::flush &&
         std::getline(std::cin, line)) {
    std::string_view trimmed = Trim(line);
    if (trimmed.empty()) continue;
    if (trimmed == ":quit" || trimmed == ":q") break;
    if (trimmed == ":help") {
      PrintHelp();
      continue;
    }
    if (trimmed == ":stats") {
      std::cout << nous.ComputeStats().ToString();
      std::cout << nous.stats().ToString() << "\n";
      continue;
    }
    if (trimmed == ":checkpoint") {
      Status s = nous.Checkpoint();
      std::cout << (s.ok() ? "checkpointed" : s.ToString()) << "\n";
      continue;
    }
    if (StartsWith(trimmed, ":ingest ")) {
      std::string text(trimmed.substr(8));
      Status s = nous.IngestText(text, Date{2016, 1, 1},
                                 StrFormat("cli_%zu", adhoc++));
      if (!s.ok()) {
        std::cout << "ingest failed (not committed): " << s << "\n";
        continue;
      }
      nous.Finalize();  // refresh topics for path queries
      std::cout << "ingested; KG now has "
                << nous.graph().NumEdges() << " edges\n";
      continue;
    }
    if (StartsWith(trimmed, ":save ")) {
      std::string path(Trim(trimmed.substr(6)));
      Status s = SaveGraphToFile(nous.graph(), path);
      std::cout << (s.ok() ? "saved to " + path : s.ToString()) << "\n";
      continue;
    }
    auto answer = nous.Ask(std::string(trimmed));
    if (answer.ok()) {
      std::cout << answer->Render(nous.graph());
    } else {
      std::cout << "error: " << answer.status() << "\n";
    }
  }
  std::cout << "bye\n";
  return 0;
}
