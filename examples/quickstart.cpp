// Quickstart: build a tiny drone-domain knowledge graph from a synthetic
// news stream fused with a curated KB, then ask questions.
//
// This is the 60-second tour of the NOUS public API:
//   world  -> curated KB snapshot + synthetic articles (the data)
//   Nous   -> construction pipeline (extract, link, map, score, mine)
//   Ask()  -> the five query classes of the paper's Figure 5.

#include <iostream>

#include "core/nous.h"
#include "corpus/article_generator.h"
#include "corpus/document_stream.h"
#include "corpus/world_model.h"
#include "kb/kb_generator.h"
#include "common/status.h"

int main() {
  using namespace nous;

  // 1. A ground-truth world: entities + dated facts. Real deployments
  //    replace this with actual feeds; the world model stands in for
  //    the licensed WSJ corpus so results are reproducible.
  DroneWorldConfig world_config;
  world_config.num_companies = 15;
  world_config.num_events = 120;
  WorldModel world = WorldModel::BuildDroneWorld(world_config);

  // 2. A curated KB covering part of that world (the YAGO2 role).
  KbCoverage coverage;
  coverage.entity_coverage = 0.6;
  CuratedKb kb = BuildCuratedKb(world, Ontology::DroneDefault(), coverage);

  // 3. Render the world's events as a news stream.
  CorpusConfig corpus_config;
  DocumentStream stream(
      ArticleGenerator(&world, corpus_config).GenerateArticles());
  std::cout << "Streaming " << stream.TotalCount() << " articles...\n";

  // 4. Construct the dynamic knowledge graph.
  Nous nous(&kb);
  NOUS_CHECK_OK(nous.IngestStream(&stream));

  GraphStats stats = nous.ComputeStats();
  std::cout << "\nFused knowledge graph:\n" << stats.ToString() << "\n";
  std::cout << "Pipeline: " << nous.stats().ToString() << "\n\n";

  // 5. Ask questions.
  for (const char* question :
       {"tell me about DJI", "what is trending", "show patterns"}) {
    std::cout << "Q: " << question << "\n";
    auto answer = nous.Ask(question);
    if (answer.ok()) {
      std::cout << answer->Render(nous.graph()) << "\n";
    } else {
      std::cout << "  error: " << answer.status() << "\n";
    }
  }
  return 0;
}
